"""Algorithm 2 properties: tampered and replayed PoCs never verify.

Hypothesis drives full CDR/CDA/PoC exchanges over generated records and
plan weights, then attacks the resulting proof:

* the untouched PoC verifies exactly once — presenting the same nonce
  pair again is rejected as ``REPLAYED``;
* any single-field tamper (charged volume, embedded claims, plan
  binding, nonce trailer, signature bytes) is rejected.

Keys are 512-bit and module-scoped: key generation dominates the cost,
signing does not, so every example affords a fresh negotiation.
"""

import dataclasses
import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import DataPlan, OptimalStrategy, PartyKnowledge, PartyRole
from repro.crypto import generate_keypair
from repro.poc.messages import PlanParams, Poc, Role
from repro.poc.protocol import NegotiationDriver
from repro.poc.verifier import PublicVerifier, VerificationFailure

EDGE_KEY = generate_keypair(512, random.Random(41))
OPERATOR_KEY = generate_keypair(512, random.Random(42))
PRIVATE_KEYS = {Role.EDGE: EDGE_KEY, Role.OPERATOR: OPERATOR_KEY}


exchanges = st.fixed_dictionaries(
    {
        "x_e": st.integers(min_value=0, max_value=10**9),
        "loss_frac": st.floats(0.0, 0.4, allow_nan=False),
        "c": st.sampled_from([0.0, 0.3, 0.5, 1.0]),
        "seed": st.integers(min_value=0, max_value=2**32 - 1),
    }
)


def negotiate(params):
    """One full protocol exchange; returns (plan, plan_params, poc)."""
    x_e = params["x_e"]
    x_o = int(x_e * (1.0 - params["loss_frac"]))
    plan = DataPlan(c=params["c"], cycle_duration_s=60.0)
    driver = NegotiationDriver(
        plan,
        cycle_start=0.0,
        edge_strategy=OptimalStrategy(
            PartyKnowledge(PartyRole.EDGE, x_e, x_o), accept_tolerance=0.02
        ),
        operator_strategy=OptimalStrategy(
            PartyKnowledge(PartyRole.OPERATOR, x_o, x_e), accept_tolerance=0.02
        ),
        edge_key=EDGE_KEY,
        operator_key=OPERATOR_KEY,
        rng=random.Random(params["seed"]),
    )
    result = driver.run()
    return plan, PlanParams(0.0, 60.0, params["c"]), result.poc


@given(exchanges)
def test_genuine_poc_verifies_once_then_replay_rejected(params):
    plan, plan_params, poc = negotiate(params)
    verifier = PublicVerifier(plan)
    first = verifier.verify(poc, plan_params, EDGE_KEY.public, OPERATOR_KEY.public)
    assert first.ok
    assert first.volume == poc.volume
    edge_claim, operator_claim = poc.claims
    assert first.edge_claim == edge_claim
    assert first.operator_claim == operator_claim
    # Presenting the same PoC (same nonce pair) again must fail.
    replay = verifier.verify(poc, plan_params, EDGE_KEY.public, OPERATOR_KEY.public)
    assert not replay.ok
    assert replay.failure is VerificationFailure.REPLAYED
    assert (verifier.verified, verifier.rejected) == (1, 1)


TAMPER_KINDS = ("volume", "claim", "plan", "nonce", "signature")


def tamper(poc, kind):
    """Return a single-field-tampered copy of a genuine PoC.

    ``volume`` and ``plan`` are insider forgeries: the finalizing party
    *re-signs* the altered proof with its own key, so the signature chain
    is intact and the deeper Algorithm 2 steps must catch the lie.  The
    other kinds are wire-level edits caught by signature/nonce checks.
    """
    if kind == "volume":
        return Poc.build(
            poc.role, poc.plan, poc.volume + 1, poc.peer_cda, PRIVATE_KEYS[poc.role]
        )
    if kind == "plan":
        shifted = PlanParams(poc.plan.t_start, poc.plan.t_end + 1.0, poc.plan.c)
        return Poc.build(
            poc.role, shifted, poc.volume, poc.peer_cda, PRIVATE_KEYS[poc.role]
        )
    if kind == "claim":
        # The PoC signature covers the embedded CDA bytes, so a claim
        # edit must also be re-signed by the finalizer to get past the
        # outer check — the *counterpart's* CDA signature then fails.
        cda = poc.peer_cda
        tampered_cda = dataclasses.replace(cda, volume=cda.volume + 1)
        return Poc.build(
            poc.role, poc.plan, poc.volume, tampered_cda, PRIVATE_KEYS[poc.role]
        )
    if kind == "nonce":
        flipped = bytes([poc.nonce_edge[0] ^ 0xFF]) + poc.nonce_edge[1:]
        return dataclasses.replace(poc, nonce_edge=flipped)
    if kind == "signature":
        flipped = bytes([poc.signature[0] ^ 0xFF]) + poc.signature[1:]
        return dataclasses.replace(poc, signature=flipped)
    raise AssertionError(kind)


@given(exchanges, st.sampled_from(TAMPER_KINDS))
def test_tampered_poc_is_rejected(params, kind):
    plan, plan_params, poc = negotiate(params)
    verifier = PublicVerifier(plan)
    forged = tamper(poc, kind)
    report = verifier.verify(forged, plan_params, EDGE_KEY.public, OPERATOR_KEY.public)
    assert not report.ok
    assert report.failure is not None
    assert verifier.verified == 0
    # The failed attempt must not burn the nonce pair: the genuine PoC
    # still verifies afterwards.
    assert verifier.verify(poc, plan_params, EDGE_KEY.public, OPERATOR_KEY.public).ok


def test_poc_from_wire_bytes_round_trips_through_verifier():
    """Decode-from-wire (not just in-memory objects) verifies too."""
    from repro.poc.messages import Poc

    params = {"x_e": 123_456_789, "loss_frac": 0.1, "c": 0.5, "seed": 7}
    plan, plan_params, poc = negotiate(params)
    rewired = Poc.decode(poc.encode())
    assert rewired == poc
    verifier = PublicVerifier(plan)
    assert verifier.verify(rewired, plan_params, EDGE_KEY.public, OPERATOR_KEY.public).ok


@pytest.mark.parametrize("kind", TAMPER_KINDS)
def test_each_tamper_kind_maps_to_a_distinct_failure(kind):
    """Spot-check the failure taxonomy on one fixed exchange."""
    params = {"x_e": 10**8, "loss_frac": 0.2, "c": 0.5, "seed": 3}
    plan, plan_params, poc = negotiate(params)
    report = PublicVerifier(plan).verify(
        tamper(poc, kind), plan_params, EDGE_KEY.public, OPERATOR_KEY.public
    )
    assert not report.ok
    expected = {
        "volume": VerificationFailure.VOLUME_MISMATCH,
        "claim": VerificationFailure.BAD_CDA_SIGNATURE,
        "plan": VerificationFailure.PLAN_MISMATCH,
        "nonce": VerificationFailure.NONCE_MISMATCH,
        "signature": VerificationFailure.BAD_POC_SIGNATURE,
    }
    assert report.failure is expected[kind]
