"""Determinism and robustness of fault-injected experiment runs.

A fault-injected scenario must reproduce bit-for-bit from
``(config, seed)``: the same config re-run serially, or fanned out over
a process pool, yields the identical codec encoding and the identical
fault trace.  And even under chaos-grade fault schedules the system-level
Theorem 2 bound survives: replaying Algorithm 1 on the cycle's true
usage records brackets what TLC charged.

Whole-scenario simulations are the heavyweight end of the harness, so
every test here is tier-2 (``slow``) and the hypothesis properties cap
their own example counts well below the profile value.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    DataPlan,
    NegotiationEngine,
    OptimalStrategy,
    PartyKnowledge,
    PartyRole,
)
from repro.experiments.parallel import result_to_dict, run_scenarios
from repro.experiments.runner import run_scenario
from repro.experiments.scenarios import VRIDGE_DL, WEBCAM_UDP_UL
from repro.netsim import FAULT_PROFILES, FaultSchedule, FaultSpec

pytestmark = pytest.mark.slow

BASE = WEBCAM_UDP_UL.with_(n_cycles=2, cycle_duration_s=5.0)


fault_specs = st.builds(
    FaultSpec,
    kind=st.sampled_from(["burst-loss", "reorder", "duplicate", "blackout"]),
    start=st.floats(0.0, 8.0, allow_nan=False),
    duration=st.one_of(st.none(), st.floats(0.1, 5.0, allow_nan=False)),
    target=st.sampled_from(["*", "uplink", "downlink", "*link*"]),
    magnitude=st.floats(0.0, 1.0, allow_nan=False),
    jitter_s=st.floats(0.0, 0.01, allow_nan=False),
)

fault_schedules = st.builds(
    lambda specs: FaultSchedule(name="generated", specs=tuple(specs)),
    st.lists(fault_specs, min_size=1, max_size=4),
)


@settings(max_examples=6)
@given(schedule=fault_schedules, seed=st.integers(min_value=0, max_value=100))
def test_fault_runs_reproduce_bit_for_bit(schedule, seed):
    """Same (config, seed, schedule) → identical encoding and trace."""
    config = BASE.with_(seed=seed, faults=schedule)
    first = run_scenario(config)
    second = run_scenario(config)
    assert result_to_dict(first) == result_to_dict(second)
    assert first.fault_trace == second.fault_trace


@settings(max_examples=5)
@given(seed=st.integers(min_value=0, max_value=100))
def test_chaos_profile_keeps_theorem2_at_system_level(seed):
    """Replaying Algorithm 1 on the true usage records brackets the
    charge even when the run suffered the full chaos schedule."""
    config = VRIDGE_DL.with_(
        n_cycles=2, cycle_duration_s=5.0, seed=seed, faults=FAULT_PROFILES["chaos"]
    )
    result = run_scenario(config)
    assert len(result.fault_trace) > 0
    plan = DataPlan(c=config.c, cycle_duration_s=config.cycle_duration_s)
    for usage in result.usages:
        x_e, x_o = usage.true_sent, usage.true_received
        negotiation = NegotiationEngine(
            plan,
            OptimalStrategy(
                PartyKnowledge(PartyRole.EDGE, x_e, x_o), accept_tolerance=0.05
            ),
            OptimalStrategy(
                PartyKnowledge(PartyRole.OPERATOR, x_o, x_e), accept_tolerance=0.05
            ),
        ).run()
        assert negotiation.converged
        if not negotiation.forced:
            assert x_o * 0.95 - 2 <= negotiation.volume <= x_e * 1.05 + 2


def test_serial_and_parallel_chaos_runs_are_bit_identical():
    """The pool fan-out must not perturb fault-injected results."""
    configs = [
        BASE.with_(seed=seed, faults=FAULT_PROFILES["chaos"]) for seed in (1, 2, 3)
    ]
    serial = [run_scenario(config) for config in configs]
    pooled = run_scenarios(configs, workers=2, cache=False)
    assert [result_to_dict(r) for r in serial] == [result_to_dict(r) for r in pooled]
    assert [r.fault_trace for r in serial] == [r.fault_trace for r in pooled]
    # The metrics snapshot rides the same codec: canonical JSON must match
    # byte-for-byte, or `repro obs` would disagree with an in-process run.
    assert [_canonical_metrics(r) for r in serial] == [
        _canonical_metrics(r) for r in pooled
    ]


def _canonical_metrics(result) -> str:
    return json.dumps(result.metrics.to_dict(), sort_keys=True)


@settings(max_examples=5)
@given(seed=st.integers(min_value=0, max_value=100))
def test_metrics_snapshot_reproduces_under_chaos(seed):
    """Per-layer accounting is part of the determinism contract: the same
    chaos-scheduled config yields a bit-identical metrics snapshot."""
    config = BASE.with_(seed=seed, faults=FAULT_PROFILES["chaos"])
    first = run_scenario(config)
    second = run_scenario(config)
    assert not first.metrics.is_empty
    if first.fault_trace:
        assert any(
            key.startswith("netsim.faults.fired") for key in first.metrics.counters
        )
    assert _canonical_metrics(first) == _canonical_metrics(second)


def test_faultless_run_unchanged_by_subsystem_presence():
    """A config with no schedule matches one with an empty schedule —
    attaching the machinery only when specs exist is observable nowhere."""
    plain = run_scenario(BASE.with_(seed=9))
    empty = run_scenario(BASE.with_(seed=9, faults=FaultSchedule(specs=())))
    plain_dict = result_to_dict(plain)
    empty_dict = result_to_dict(empty)
    # The configs differ (None vs empty schedule) but the physics cannot.
    plain_dict.pop("config")
    empty_dict.pop("config")
    assert plain_dict == empty_dict
    assert len(plain.fault_trace) == len(empty.fault_trace) == 0
