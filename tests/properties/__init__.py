"""Property-based invariant harness for the paper's guarantees.

Each module pins one theorem or protocol property to hypothesis-generated
inputs: Theorem 2 (charging bounds), Theorem 3 (equilibrium of rational
play), Theorem 4 (one-round convergence), Algorithm 2 (tamper/replay
rejection), and bit-level determinism of fault-injected experiments.
"""
