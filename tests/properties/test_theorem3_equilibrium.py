"""Theorem 3: the rational claim flip is a Nash equilibrium.

With perfect records and a strict cross-check (tolerance 0), the claim
pair (edge claims x̂_o, operator claims x̂_e) is a saddle point of the
*single-round* claim game: the negotiation settles immediately at the
expected charge x̂ = x̂_o + c·(x̂_e − x̂_o), and no unilateral claim
deviation helps.  A deviating edge whose claim is accepted pays the same
or more; a deviating operator collects the same or less; a deviation
that gets rejected produces no PoC this round — and no PoC means no
settlement, which the paper argues is strictly worse for the deviator
(§5.1: service cutoff / unpaid traffic).  The tests therefore run the
deviation engine with ``max_rounds=1``: multi-round re-negotiation
dynamics are heuristic concession behaviour outside the theorem (and
their outcomes are still pinned by the Theorem 2 bounds property).

The deviations generated here span the claim-deviation space of the
theorem's proof: an arbitrary fixed claim under the normal accept rule,
honest reporting of the party's own record, and stubbornness (rejects
everything but its own number, which stalls or settles at a cross-checked
claim).  Concession-dynamics strategies (RandomSelfish, Rubinstein) are
deliberately excluded: in *repeated* rounds they can exploit the
counterpart's midpoint-walking heuristic, which is outside the theorem's
single-shot game — their outcomes are still pinned by the Theorem 2
bounds property.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.core import (
    DataPlan,
    HonestStrategy,
    NegotiationEngine,
    OptimalStrategy,
    PartyKnowledge,
    PartyRole,
    StubbornStrategy,
)
from repro.core.strategies import Strategy

ROUNDING_SLACK = 2

DEVIATION_KINDS = ("fixed-claim", "honest", "stubborn")


class FixedClaimStrategy(Strategy):
    """Claims an arbitrary fixed volume but keeps the cross-check rule.

    This is the pure claim deviation of the Theorem 3 proof: the player
    changes *what it asks for* while still accepting/rejecting like a
    record-holding party.  (StubbornStrategy additionally breaks the
    accept rule, which is covered as its own deviation kind.)
    """

    def __init__(self, knowledge, claim):
        super().__init__(knowledge)
        self.claim = claim

    def target_claim(self):
        return self.claim


def equilibrium_volume(plan, x_e, x_o):
    result = NegotiationEngine(
        plan,
        OptimalStrategy(PartyKnowledge(PartyRole.EDGE, x_e, x_o)),
        OptimalStrategy(PartyKnowledge(PartyRole.OPERATOR, x_o, x_e)),
    ).run()
    assert result.converged and not result.forced and result.rounds == 1
    return result.volume


def build_deviation(kind, role, own_record, other_estimate, claim):
    knowledge = PartyKnowledge(role, own_record, other_estimate)
    if kind == "fixed-claim":
        return FixedClaimStrategy(knowledge, claim)
    if kind == "honest":
        return HonestStrategy(knowledge)
    if kind == "stubborn":
        return StubbornStrategy(knowledge, claim)
    raise AssertionError(kind)


games = st.fixed_dictionaries(
    {
        "x_e": st.integers(min_value=0, max_value=10**8),
        "loss_frac": st.floats(0.0, 0.5, allow_nan=False),
        "c": st.sampled_from([0.0, 0.3, 0.5, 1.0]),
        "kind": st.sampled_from(DEVIATION_KINDS),
        "claim_frac": st.floats(0.0, 1.5, allow_nan=False),
    }
)


@given(games)
def test_edge_deviation_never_pays_less(params):
    """Any converged unilateral edge deviation charges ≥ the equilibrium."""
    x_e = params["x_e"]
    x_o = int(x_e * (1.0 - params["loss_frac"]))
    plan = DataPlan(c=params["c"])
    v_eq = equilibrium_volume(plan, x_e, x_o)
    deviant_claim = int(params["claim_frac"] * x_e)
    edge = build_deviation(params["kind"], PartyRole.EDGE, x_e, x_o, deviant_claim)
    operator = OptimalStrategy(PartyKnowledge(PartyRole.OPERATOR, x_o, x_e))
    result = NegotiationEngine(plan, edge, operator, max_rounds=1).run()
    if result.converged and not result.forced:
        assert result.volume >= v_eq - ROUNDING_SLACK
    # A rejected deviation yields no PoC this round — no settlement at
    # all, which is worse for the deviator than paying v_eq.


@given(games)
def test_operator_deviation_never_collects_more(params):
    """Any converged unilateral operator deviation charges ≤ equilibrium."""
    x_e = params["x_e"]
    x_o = int(x_e * (1.0 - params["loss_frac"]))
    plan = DataPlan(c=params["c"])
    v_eq = equilibrium_volume(plan, x_e, x_o)
    deviant_claim = int(params["claim_frac"] * x_e)
    edge = OptimalStrategy(PartyKnowledge(PartyRole.EDGE, x_e, x_o))
    operator = build_deviation(
        params["kind"], PartyRole.OPERATOR, x_o, x_e, deviant_claim
    )
    result = NegotiationEngine(plan, edge, operator, max_rounds=1).run()
    if result.converged and not result.forced:
        assert result.volume <= v_eq + ROUNDING_SLACK
