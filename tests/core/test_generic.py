"""Appendix D: generic (Internet-server) downlink charging bound."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.generic import GenericDownlinkInstance
from repro.core.plan import DataPlan


class TestInstance:
    def test_ordering_enforced(self):
        with pytest.raises(ValueError):
            GenericDownlinkInstance(internet_sent=900, core_received=1000, device_received=800)
        with pytest.raises(ValueError):
            GenericDownlinkInstance(internet_sent=1000, core_received=900, device_received=950)

    def test_internet_loss(self):
        inst = GenericDownlinkInstance(1000, 950, 900)
        assert inst.internet_loss == 50


class TestOverchargeBound:
    def test_overcharge_equals_c_times_internet_loss(self):
        """The Appendix D identity: x̂' − x̂ = c·(x̂'_e − x̂_e)."""
        inst = GenericDownlinkInstance(1000, 950, 900)
        plan = DataPlan(c=0.4)
        assert inst.overcharge(plan) == pytest.approx(0.4 * 50)
        assert inst.overcharge(plan) == pytest.approx(inst.overcharge_bound(plan))

    def test_no_internet_loss_no_overcharge(self):
        """Edge co-location (the paper's testbed): the bound is 0."""
        inst = GenericDownlinkInstance(1000, 1000, 900)
        assert inst.overcharge(DataPlan(c=0.7)) == 0.0

    def test_c_zero_immune_to_internet_loss(self):
        inst = GenericDownlinkInstance(1000, 500, 400)
        assert inst.overcharge(DataPlan(c=0.0)) == 0.0

    @given(
        st.integers(min_value=0, max_value=10**9),
        st.integers(min_value=0, max_value=10**9),
        st.integers(min_value=0, max_value=10**9),
        st.floats(min_value=0, max_value=1, allow_nan=False),
    )
    def test_bound_holds_for_arbitrary_instances(self, a, b, c_vol, c):
        sent, core, device = sorted((a, b, c_vol), reverse=True)
        inst = GenericDownlinkInstance(sent, core, device)
        plan = DataPlan(c=c) if c > 0 else DataPlan(c=0.0)
        assert inst.overcharge(plan) <= inst.overcharge_bound(plan) + 1e-6
        assert inst.overcharge(plan) >= -1e-6  # never under-charges vs ideal
