"""CycleUsage invariants."""

import pytest

from repro.core.plan import ChargingCycle
from repro.core.records import CycleUsage
from repro.netsim.packet import Direction


def usage(sent=1000, received=900, **kw):
    defaults = dict(
        cycle=ChargingCycle(0.0, 3600.0),
        direction=Direction.UPLINK,
        flow_id="f",
        true_sent=sent,
        true_received=received,
        gateway_count=received,
        edge_sent_record=sent,
        edge_received_estimate=received,
        operator_received_record=received,
        operator_sent_estimate=sent,
    )
    defaults.update(kw)
    return CycleUsage(**defaults)


class TestInvariants:
    def test_loss_bytes(self):
        assert usage().loss_bytes == 100

    def test_loss_fraction(self):
        assert usage().loss_fraction == pytest.approx(0.1)

    def test_idle_cycle_loss_fraction_zero(self):
        assert usage(sent=0, received=0, gateway_count=0,
                     edge_sent_record=0, edge_received_estimate=0,
                     operator_received_record=0, operator_sent_estimate=0).loss_fraction == 0.0

    def test_ground_truth_ordering_enforced(self):
        with pytest.raises(ValueError):
            usage(sent=900, received=1000)

    def test_negative_fields_rejected(self):
        with pytest.raises(ValueError):
            usage(gateway_count=-1)

    def test_measured_records_may_disagree_with_truth(self):
        """Records carry measurement error; only the truth is ordered."""
        u = usage(edge_sent_record=980, operator_received_record=930)
        assert u.edge_sent_record != u.true_sent


class TestScaling:
    def test_hour_cycle_is_identity_in_mb(self):
        assert usage().scaled_to_hour(5_000_000) == pytest.approx(5.0)

    def test_minute_cycle_scales_60x(self):
        u = usage(cycle=ChargingCycle(0.0, 60.0))
        assert u.scaled_to_hour(1_000_000) == pytest.approx(60.0)
