"""Quota-triggered charging cycles."""

import pytest

from repro.core.quota import QuotaWatcher
from repro.netsim.counters import CumulativeCounter
from repro.netsim.events import EventLoop


def build(quota=10_000, max_cycle=100.0, poll=1.0):
    loop = EventLoop()
    counter = CumulativeCounter()
    watcher = QuotaWatcher(loop, counter, quota, max_cycle, poll)
    return loop, counter, watcher


def feed(loop, counter, rate_bytes_per_s, duration, start=0.0):
    for t in range(int(duration)):
        loop.schedule_at(start + t + 0.5, counter.add, start + t + 0.5, rate_bytes_per_s)


class TestQuotaTrigger:
    def test_quota_closes_cycle_early(self):
        loop, counter, watcher = build(quota=5_000, max_cycle=100.0)
        watcher.start()
        feed(loop, counter, 1_000, 60)
        loop.run_until(60.0)
        assert watcher.triggers, "quota should have fired"
        first = watcher.triggers[0]
        assert first.by_quota
        assert first.charged_bytes >= 5_000
        assert first.cycle.duration < 100.0

    def test_wall_clock_closes_idle_cycle(self):
        loop, counter, watcher = build(quota=10**9, max_cycle=10.0)
        watcher.start()
        loop.run_until(25.0)
        assert len(watcher.triggers) == 2
        assert not watcher.triggers[0].by_quota
        assert watcher.triggers[0].cycle.duration == pytest.approx(10.0, abs=1.1)

    def test_tranches_partition_usage(self):
        """Consecutive quota cycles cover the counter without overlap."""
        loop, counter, watcher = build(quota=5_000, max_cycle=1000.0)
        watcher.start()
        feed(loop, counter, 1_000, 30)
        loop.run_until(31.0)
        total_in_cycles = sum(t.charged_bytes for t in watcher.triggers)
        total_in_cycles += watcher.current_usage
        assert total_in_cycles == counter.total

    def test_cycles_are_consecutive(self):
        loop, counter, watcher = build(quota=3_000, max_cycle=1000.0)
        watcher.start()
        feed(loop, counter, 1_000, 20)
        loop.run_until(21.0)
        for previous, current in zip(watcher.triggers, watcher.triggers[1:]):
            assert current.cycle.t_start == previous.cycle.t_end

    def test_stop_halts_watching(self):
        loop, counter, watcher = build(quota=1_000, max_cycle=1000.0)
        watcher.start()
        feed(loop, counter, 1_000, 5)
        loop.schedule_at(2.6, watcher.stop)
        loop.run_until(10.0)
        assert len(watcher.triggers) <= 2

    def test_double_start_rejected(self):
        _, _, watcher = build()
        watcher.start()
        with pytest.raises(RuntimeError):
            watcher.start()

    def test_validation(self):
        loop = EventLoop()
        with pytest.raises(ValueError):
            QuotaWatcher(loop, CumulativeCounter(), 0, 10.0)
        with pytest.raises(ValueError):
            QuotaWatcher(loop, CumulativeCounter(), 100, 0.0)


class TestIntegrationWithGateway:
    def test_quota_cycle_on_real_bearer(self):
        """Watch the SPGW's bearer counter on the live network."""
        from repro.cellular import CellularNetwork, RadioProfile, make_test_imsi
        from repro.netsim import Direction, Packet, StreamRegistry

        loop = EventLoop()
        net = CellularNetwork(loop, StreamRegistry(1))
        imsi = make_test_imsi(1)
        access = net.attach_device(imsi, RadioProfile())
        net.create_bearer(imsi, "app")
        bearer = net.bearers.by_flow("app")
        watcher = QuotaWatcher(loop, bearer.downlink, quota_bytes=50_000, max_cycle_s=1000.0)
        watcher.start()
        for i in range(100):
            loop.schedule_at(i * 0.1, net.send_downlink, Packet(
                size=1000, flow_id="app", direction=Direction.DOWNLINK,
            ))
        loop.run_until(15.0)
        assert watcher.triggers
        assert watcher.triggers[0].by_quota
        assert watcher.triggers[0].charged_bytes >= 50_000
