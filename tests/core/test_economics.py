"""§8's deployment-incentive market model."""

import pytest

from repro.core.economics import Market, MarketConfig, OperatorModel
from repro.netsim.rng import StreamRegistry


def duopoly(overcharge=1.08, months=24, seed=1):
    tlc = OperatorModel("operator-A", deploys_tlc=True)
    legacy = OperatorModel("operator-B", deploys_tlc=False, overcharge_factor=overcharge)
    market = Market([tlc, legacy], MarketConfig(), StreamRegistry(seed))
    market.run(months)
    return market


class TestOperatorModel:
    def test_bill_with_markup(self):
        operator = OperatorModel("x", deploys_tlc=False, overcharge_factor=1.1)
        assert operator.bill(10.0) == pytest.approx(110.0)

    def test_tlc_operator_cannot_overcharge(self):
        """The negotiation bound makes a selfish markup unsustainable."""
        with pytest.raises(ValueError):
            OperatorModel("x", deploys_tlc=True, overcharge_factor=1.1)

    def test_rejects_underbilling_factor(self):
        with pytest.raises(ValueError):
            OperatorModel("x", deploys_tlc=False, overcharge_factor=0.9)


class TestMarketDynamics:
    def test_overcharger_loses_share(self):
        """The paper's §8 argument: users churn toward the TLC operator."""
        market = duopoly()
        assert market.market_share("operator-A") > 0.6
        assert market.market_share("operator-B") < 0.4

    def test_honest_duopoly_stays_balanced(self):
        tlc = OperatorModel("operator-A", deploys_tlc=True)
        honest = OperatorModel("operator-B", deploys_tlc=False)  # honest legacy
        market = Market([tlc, honest], MarketConfig(), StreamRegistry(2))
        market.run(24)
        # Trusted charging still attracts churners, but mildly.
        assert 0.5 <= market.market_share("operator-A") <= 0.75

    def test_tlc_revenue_overtakes_eventually(self):
        """Short-term the over-charger earns more per user; long-term the
        subscriber drain reverses the ranking."""
        short = duopoly(months=3)
        long = duopoly(months=48)
        assert short.state.revenue["operator-B"] >= short.state.revenue["operator-A"] * 0.9
        # Cumulative monthly revenue comparison at the end of the horizon:
        last_month_a = short.operators["operator-A"].bill(15.0) * long.state.shares["operator-A"]
        last_month_b = long.operators["operator-B"].bill(15.0) * long.state.shares["operator-B"]
        assert last_month_a > last_month_b

    def test_subscribers_conserved(self):
        market = duopoly(months=12)
        assert sum(market.state.shares.values()) == 10_000

    def test_higher_markup_faster_exodus(self):
        mild = duopoly(overcharge=1.02, months=12, seed=3)
        harsh = duopoly(overcharge=1.15, months=12, seed=3)
        assert harsh.market_share("operator-B") < mild.market_share("operator-B")


class TestValidation:
    def test_needs_two_operators(self):
        with pytest.raises(ValueError):
            Market([OperatorModel("solo", deploys_tlc=True)])

    def test_unique_names(self):
        with pytest.raises(ValueError):
            Market([
                OperatorModel("x", deploys_tlc=True),
                OperatorModel("x", deploys_tlc=False),
            ])

    def test_positive_months(self):
        with pytest.raises(ValueError):
            duopoly().run(0)
