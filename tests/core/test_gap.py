"""Gap metrics and the legacy baseline."""

import pytest

from repro.core.gap import (
    SchemeOutcome,
    absolute_gap,
    expected_charge,
    gap_ratio,
    legacy_charge,
    reduction_ratio,
)
from repro.core.plan import ChargingCycle, DataPlan
from repro.core.records import CycleUsage
from repro.netsim.packet import Direction


def usage(direction=Direction.UPLINK, sent=1000, received=900, gateway=None):
    gw = gateway if gateway is not None else (received if direction is Direction.UPLINK else sent)
    return CycleUsage(
        cycle=ChargingCycle(0.0, 3600.0),
        direction=direction,
        flow_id="f",
        true_sent=sent,
        true_received=received,
        gateway_count=gw,
        edge_sent_record=sent,
        edge_received_estimate=received,
        operator_received_record=received,
        operator_sent_estimate=sent,
    )


class TestMetrics:
    def test_absolute_gap(self):
        assert absolute_gap(950, 900) == 50
        assert absolute_gap(900, 950) == 50

    def test_gap_ratio(self):
        assert gap_ratio(950, 1000) == pytest.approx(0.05)

    def test_gap_ratio_idle_cycle(self):
        assert gap_ratio(0, 0) == 0.0
        assert gap_ratio(5, 0) == float("inf")

    def test_reduction_ratio(self):
        assert reduction_ratio(1000, 800) == pytest.approx(0.2)
        assert reduction_ratio(0, 0) == 0.0

    def test_reduction_negative_when_tlc_charges_more(self):
        """Uplink with c > 0: TLC charges lost data legacy never saw."""
        assert reduction_ratio(900, 950) < 0


class TestLegacyBaseline:
    def test_uplink_legacy_charges_received(self):
        """Gateway sits after UL loss: legacy bill = received volume."""
        u = usage(Direction.UPLINK)
        assert legacy_charge(u) == 900

    def test_downlink_legacy_charges_sent(self):
        """Gateway sits before DL loss: legacy bill = sent volume."""
        u = usage(Direction.DOWNLINK)
        assert legacy_charge(u) == 1000

    def test_uplink_legacy_gap_is_c_times_loss(self):
        u = usage(Direction.UPLINK)
        plan = DataPlan(c=0.5)
        gap = absolute_gap(legacy_charge(u), expected_charge(u, plan))
        assert gap == pytest.approx(0.5 * u.loss_bytes)

    def test_downlink_legacy_gap_is_one_minus_c_times_loss(self):
        u = usage(Direction.DOWNLINK)
        plan = DataPlan(c=0.25)
        gap = absolute_gap(legacy_charge(u), expected_charge(u, plan))
        assert gap == pytest.approx(0.75 * u.loss_bytes)

    def test_downlink_c1_legacy_is_exact(self):
        """Figure 15: at c = 1 honest legacy equals TLC on downlink."""
        u = usage(Direction.DOWNLINK)
        assert absolute_gap(legacy_charge(u), expected_charge(u, DataPlan(c=1.0))) == 0


class TestSchemeOutcome:
    def test_delta_and_epsilon(self):
        outcome = SchemeOutcome("legacy", charged=950, expected=1000.0)
        assert outcome.delta == 50
        assert outcome.epsilon == pytest.approx(0.05)

    def test_exact_charge_zero_gap(self):
        outcome = SchemeOutcome("tlc", charged=1000, expected=1000.0)
        assert outcome.delta == 0.0 and outcome.epsilon == 0.0
