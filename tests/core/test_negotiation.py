"""Algorithm 1 engine mechanics."""

import random

import pytest

from repro.core.negotiation import NegotiationEngine
from repro.core.plan import DataPlan
from repro.core.strategies import (
    BoundViolatingStrategy,
    HonestStrategy,
    OptimalStrategy,
    PartyKnowledge,
    PartyRole,
    RandomSelfishStrategy,
    StubbornStrategy,
)

X_HAT_E, X_HAT_O = 1_000_000, 930_000


def edge_knowledge(sent=X_HAT_E, recv_est=X_HAT_O):
    return PartyKnowledge(PartyRole.EDGE, sent, recv_est)


def operator_knowledge(recv=X_HAT_O, sent_est=X_HAT_E):
    return PartyKnowledge(PartyRole.OPERATOR, recv, sent_est)


def run(edge, operator, c=0.5, **kw):
    return NegotiationEngine(DataPlan(c=c), edge, operator, **kw).run()


class TestHonestPlay:
    def test_one_round_exact_charge(self):
        result = run(HonestStrategy(edge_knowledge()), HonestStrategy(operator_knowledge()))
        assert result.rounds == 1
        assert result.converged and not result.forced
        assert result.volume == 965_000

    def test_final_claims_are_truthful(self):
        result = run(HonestStrategy(edge_knowledge()), HonestStrategy(operator_knowledge()))
        assert result.final_claims == (X_HAT_E, X_HAT_O)

    def test_zero_traffic_cycle(self):
        result = run(
            HonestStrategy(PartyKnowledge(PartyRole.EDGE, 0, 0)),
            HonestStrategy(PartyKnowledge(PartyRole.OPERATOR, 0, 0)),
        )
        assert result.volume == 0


class TestOptimalPlay:
    def test_one_round_reaches_expected(self):
        """Theorem 4: rational play stops with x = x̂ in 1 round."""
        result = run(OptimalStrategy(edge_knowledge()), OptimalStrategy(operator_knowledge()))
        assert result.rounds == 1
        assert result.volume == 965_000

    def test_claim_flip_is_recorded(self):
        """Optimal claims flip the order: x_e = x̂_o < x_o = x̂_e."""
        result = run(OptimalStrategy(edge_knowledge()), OptimalStrategy(operator_knowledge()))
        assert result.final_claims == (X_HAT_O, X_HAT_E)

    @pytest.mark.parametrize("c", [0.0, 0.25, 0.5, 0.75, 1.0])
    def test_expected_charge_across_plans(self, c):
        result = run(
            OptimalStrategy(edge_knowledge()), OptimalStrategy(operator_knowledge()), c=c
        )
        expected = X_HAT_O + c * (X_HAT_E - X_HAT_O)
        assert result.volume == pytest.approx(expected, abs=1)


class TestMixedPlay:
    def test_honest_edge_vs_optimal_operator_bounded(self):
        """One honest, one rational: x ≠ x̂ possible but Thm 2 bound holds."""
        result = run(HonestStrategy(edge_knowledge()), OptimalStrategy(operator_knowledge()))
        assert X_HAT_O <= result.volume <= X_HAT_E

    def test_optimal_edge_vs_honest_operator_bounded(self):
        result = run(OptimalStrategy(edge_knowledge()), HonestStrategy(operator_knowledge()))
        assert X_HAT_O <= result.volume <= X_HAT_E

    def test_honest_vs_optimal_favors_the_rational_party(self):
        """The rational operator extracts more than x̂ from an honest edge."""
        honest_vs_optimal = run(
            HonestStrategy(edge_knowledge()), OptimalStrategy(operator_knowledge())
        )
        assert honest_vs_optimal.volume >= 965_000


class TestMisbehaviour:
    def test_bound_violation_detected_and_rejected(self):
        """A claim outside (x_L, x_U) is auto-rejected by the peer."""
        edge = HonestStrategy(edge_knowledge())
        operator = BoundViolatingStrategy(operator_knowledge(), fixed_claim=10**12)
        result = run(edge, operator, max_rounds=8)
        record = result.transcript[1]
        assert not record.operator_claim_in_bounds
        assert not record.edge_accepts

    def test_stubborn_operator_gets_no_agreement(self):
        """An absurd stubborn claim never converges: the honest edge keeps
        rejecting, so there is no PoC and the operator cannot be paid —
        exactly the paper's argument for why misbehaviour doesn't pay."""
        edge = HonestStrategy(edge_knowledge())
        operator = StubbornStrategy(operator_knowledge(), fixed_claim=5_000_000)
        result = run(edge, operator, max_rounds=16)
        assert not result.converged
        last = result.transcript[-1]
        assert not last.edge_accepts  # the edge never signed off

    def test_max_rounds_safety_valve(self):
        edge = StubbornStrategy(edge_knowledge(), fixed_claim=1)
        operator = StubbornStrategy(operator_knowledge(), fixed_claim=10**9)
        result = run(edge, operator, max_rounds=5)
        assert result.rounds == 5
        assert not result.converged

    def test_rejects_bad_max_rounds(self):
        with pytest.raises(ValueError):
            NegotiationEngine(
                DataPlan(), HonestStrategy(edge_knowledge()),
                HonestStrategy(operator_knowledge()), max_rounds=0,
            )


class TestTranscript:
    def test_transcript_records_every_round(self):
        rng = random.Random(5)
        result = run(
            RandomSelfishStrategy(edge_knowledge(), rng),
            RandomSelfishStrategy(operator_knowledge(), rng),
        )
        assert len(result.transcript) == result.rounds
        for i, record in enumerate(result.transcript):
            assert record.round_index == i

    def test_bounds_nest_monotonically(self):
        rng = random.Random(6)
        result = run(
            RandomSelfishStrategy(edge_knowledge(), rng),
            RandomSelfishStrategy(operator_knowledge(), rng),
        )
        lowers = [r.x_lower for r in result.transcript]
        assert lowers == sorted(lowers)
        uppers = [r.x_upper for r in result.transcript if r.x_upper is not None]
        assert uppers == sorted(uppers, reverse=True)
