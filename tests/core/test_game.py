"""GameInstance analytics beyond the theorem property tests."""

import pytest

from repro.core.game import GameInstance


class TestWorstCases:
    def test_edge_worst_case_at_truthful_claim(self):
        """Claiming x̂_e exposes the edge to paying x̂_e."""
        game = GameInstance(1000, 900, 0.5)
        assert game.edge_worst_case(1000) == 1000

    def test_edge_worst_case_at_minimax_claim(self):
        game = GameInstance(1000, 900, 0.5)
        assert game.edge_worst_case(900) == 950  # = x̂

    def test_operator_worst_case_at_truthful_claim(self):
        game = GameInstance(1000, 900, 0.5)
        assert game.operator_worst_case(900) == 900

    def test_operator_worst_case_at_maximin_claim(self):
        game = GameInstance(1000, 900, 0.5)
        assert game.operator_worst_case(1000) == 950  # = x̂

    def test_minimax_claim_minimizes_worst_case(self):
        game = GameInstance(1000, 900, 0.5)
        claims = range(900, 1001, 10)
        best = min(claims, key=game.edge_worst_case)
        assert game.edge_worst_case(best) == game.edge_worst_case(900)

    def test_maximin_claim_maximizes_worst_case(self):
        game = GameInstance(1000, 900, 0.5)
        claims = range(900, 1001, 10)
        best = max(claims, key=game.operator_worst_case)
        assert game.operator_worst_case(best) == game.operator_worst_case(1000)


class TestEquilibrium:
    def test_truthful_pair_not_nash_under_selfishness(self):
        """(x̂_e, x̂_o) is NOT an equilibrium: each side can deviate."""
        game = GameInstance(1000, 900, 0.5)
        assert not game.is_pure_nash(1000, 900)

    def test_optimal_pair_is_nash(self):
        game = GameInstance(1000, 900, 0.5)
        assert game.is_pure_nash(900, 1000)

    def test_zero_loss_collapses_game(self):
        """No loss ⇒ no room for selfishness: the game is a single point."""
        game = GameInstance(500, 500, 0.5)
        assert game.minimax_value() == game.maximin_value() == 500
        assert game.is_pure_nash(500, 500)


class TestValidation:
    def test_rejects_inverted_truth(self):
        with pytest.raises(ValueError):
            GameInstance(900, 1000, 0.5)

    def test_rejects_bad_c(self):
        with pytest.raises(ValueError):
            GameInstance(1000, 900, 1.5)

    def test_grid_includes_both_endpoints(self):
        game = GameInstance(1000, 900, 0.5)
        grid = game._feasible_grid(8)
        assert grid[0] == 900 and grid[-1] == 1000
