"""Property-based verification of the paper's theorems (Appendix B/C).

Hypothesis generates arbitrary game instances (ground truths and plan
weights) and checks:

* Theorem 2 (bounded charging): rational/honest play stops inside
  ``[x̂_o, x̂_e]``;
* Theorem 3 (correctness): rational play converges to
  ``x̂ = x̂_o + c·(x̂_e − x̂_o)``, which is the unique pure Nash
  equilibrium value;
* Theorem 4 (latency friendliness): honest or rational play ends in
  one round.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.game import GameInstance
from repro.core.negotiation import NegotiationEngine
from repro.core.plan import DataPlan
from repro.core.strategies import (
    HonestStrategy,
    OptimalStrategy,
    PartyKnowledge,
    PartyRole,
    RandomSelfishStrategy,
)

# Arbitrary ground truths: received ≤ sent, plus the plan weight.
instances = st.tuples(
    st.integers(min_value=0, max_value=10**9),
    st.integers(min_value=0, max_value=10**9),
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
).map(lambda t: (max(t[0], t[1]), min(t[0], t[1]), t[2]))


def make_engine(strategy_cls, x_hat_e, x_hat_o, c, **kw):
    edge = strategy_cls(PartyKnowledge(PartyRole.EDGE, x_hat_e, x_hat_o), **kw)
    operator = strategy_cls(PartyKnowledge(PartyRole.OPERATOR, x_hat_o, x_hat_e), **kw)
    return NegotiationEngine(DataPlan(c=c), edge, operator)


class TestTheorem2BoundedCharging:
    @settings(max_examples=200)
    @given(instances)
    def test_honest_play_bounded(self, instance):
        x_hat_e, x_hat_o, c = instance
        result = make_engine(HonestStrategy, x_hat_e, x_hat_o, c).run()
        assert x_hat_o <= result.volume <= x_hat_e

    @settings(max_examples=200)
    @given(instances)
    def test_rational_play_bounded(self, instance):
        x_hat_e, x_hat_o, c = instance
        result = make_engine(OptimalStrategy, x_hat_e, x_hat_o, c).run()
        assert x_hat_o <= result.volume <= x_hat_e

    @settings(max_examples=100, deadline=None)
    @given(instances, st.integers(min_value=0, max_value=2**31))
    def test_random_selfish_play_bounded_within_tolerance(self, instance, seed):
        """TLC-random keeps the bound up to its acceptance tolerance and
        the engine's integer convergence slack."""
        x_hat_e, x_hat_o, c = instance
        rng = random.Random(seed)
        tol = 0.015
        edge = RandomSelfishStrategy(
            PartyKnowledge(PartyRole.EDGE, x_hat_e, x_hat_o), rng, accept_tolerance=tol
        )
        operator = RandomSelfishStrategy(
            PartyKnowledge(PartyRole.OPERATOR, x_hat_o, x_hat_e), rng, accept_tolerance=tol
        )
        result = NegotiationEngine(DataPlan(c=c), edge, operator).run()
        # Integer claims in an open interval can drift one byte per round
        # (negligible at real volumes); allow for that on tiny instances.
        slack = result.rounds + 2
        assert x_hat_o * (1 - tol) - slack <= result.volume <= x_hat_e * (1 + tol) + slack


class TestTheorem3Correctness:
    @settings(max_examples=200)
    @given(instances)
    def test_rational_play_reaches_expected_charge(self, instance):
        x_hat_e, x_hat_o, c = instance
        result = make_engine(OptimalStrategy, x_hat_e, x_hat_o, c).run()
        expected = x_hat_o + c * (x_hat_e - x_hat_o)
        assert abs(result.volume - expected) <= 1  # integer rounding

    @settings(max_examples=150)
    @given(instances)
    def test_minimax_equals_maximin_equals_expected(self, instance):
        """Von Neumann: min-max = max-min = x̂ (the saddle point)."""
        x_hat_e, x_hat_o, c = instance
        game = GameInstance(x_hat_e, x_hat_o, c)
        assert game.minimax_value() == pytest.approx(game.expected, rel=1e-12, abs=1e-9)
        assert game.maximin_value() == pytest.approx(game.expected, rel=1e-12, abs=1e-9)

    @settings(max_examples=60, deadline=None)
    @given(instances)
    def test_analytic_values_match_grid_search(self, instance):
        x_hat_e, x_hat_o, c = instance
        game = GameInstance(x_hat_e, x_hat_o, c)
        tolerance = max(1.0, (x_hat_e - x_hat_o) / 32)  # grid resolution
        assert abs(game.minimax_value() - game.minimax_value_grid()) <= tolerance
        assert abs(game.maximin_value() - game.maximin_value_grid()) <= tolerance

    @settings(max_examples=60, deadline=None)
    @given(instances)
    def test_optimal_claims_form_pure_nash(self, instance):
        x_hat_e, x_hat_o, c = instance
        game = GameInstance(x_hat_e, x_hat_o, c)
        assert game.is_pure_nash(game.edge_minimax_claim(), game.operator_maximin_claim())


class TestTheorem4LatencyFriendliness:
    @settings(max_examples=200)
    @given(instances)
    def test_honest_play_one_round(self, instance):
        x_hat_e, x_hat_o, c = instance
        assert make_engine(HonestStrategy, x_hat_e, x_hat_o, c).run().rounds == 1

    @settings(max_examples=200)
    @given(instances)
    def test_rational_play_one_round(self, instance):
        x_hat_e, x_hat_o, c = instance
        assert make_engine(OptimalStrategy, x_hat_e, x_hat_o, c).run().rounds == 1
