"""Property: *any* pairing of implemented strategies stays safe.

Whatever mix of honesty, rationality, random selfishness and classical
bargaining the two parties bring, a converged negotiation must respect
Theorem 2's bound (within the engine's integer slack and each party's
acceptance tolerance), and a non-converged one yields no enforceable
charge.  This is the compositional safety claim behind deploying TLC
against counterparts of unknown sophistication.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bargaining import RubinsteinStrategy
from repro.core.negotiation import NegotiationEngine
from repro.core.plan import DataPlan
from repro.core.strategies import (
    HonestStrategy,
    OptimalStrategy,
    PartyKnowledge,
    PartyRole,
    RandomSelfishStrategy,
)

STRATEGY_KINDS = ("honest", "optimal", "random", "rubinstein")


def make_strategy(kind, knowledge, rng):
    if kind == "honest":
        return HonestStrategy(knowledge)
    if kind == "optimal":
        return OptimalStrategy(knowledge)
    if kind == "random":
        return RandomSelfishStrategy(knowledge, rng)
    return RubinsteinStrategy(knowledge, delta=0.8)


instances = st.tuples(
    st.integers(min_value=0, max_value=10**9),
    st.integers(min_value=0, max_value=10**9),
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
).map(lambda t: (max(t[0], t[1]), min(t[0], t[1]), t[2]))


@settings(max_examples=150, deadline=None)
@given(
    instances,
    st.sampled_from(STRATEGY_KINDS),
    st.sampled_from(STRATEGY_KINDS),
    st.integers(min_value=0, max_value=2**31),
)
def test_any_pairing_is_safe(instance, edge_kind, operator_kind, seed):
    x_hat_e, x_hat_o, c = instance
    rng = random.Random(seed)
    edge = make_strategy(edge_kind, PartyKnowledge(PartyRole.EDGE, x_hat_e, x_hat_o), rng)
    operator = make_strategy(
        operator_kind, PartyKnowledge(PartyRole.OPERATOR, x_hat_o, x_hat_e), rng
    )
    result = NegotiationEngine(DataPlan(c=c), edge, operator).run()
    if not result.converged:
        return  # no PoC — no enforceable charge, nothing to bound
    # Tolerance-aware Theorem-2 bound with the integer round drift.
    tolerance = max(getattr(edge, "accept_tolerance", 0.0),
                    getattr(operator, "accept_tolerance", 0.0))
    slack = result.rounds + 2
    lower = x_hat_o * (1.0 - tolerance) - slack
    upper = x_hat_e * (1.0 + tolerance) + slack
    assert lower <= result.volume <= upper, (
        f"{edge_kind} vs {operator_kind}: {result.volume} outside "
        f"[{lower}, {upper}] for truth ({x_hat_e}, {x_hat_o}), c={c}"
    )


@settings(max_examples=80, deadline=None)
@given(instances, st.integers(min_value=0, max_value=2**31))
def test_rational_vs_anyone_never_below_truthful_floor(instance, seed):
    """A rational operator never converges below its record, no matter
    how aggressive the edge's (honest-record-based) play is."""
    x_hat_e, x_hat_o, c = instance
    rng = random.Random(seed)
    for kind in STRATEGY_KINDS:
        edge = make_strategy(kind, PartyKnowledge(PartyRole.EDGE, x_hat_e, x_hat_o), rng)
        operator = OptimalStrategy(PartyKnowledge(PartyRole.OPERATOR, x_hat_o, x_hat_e))
        result = NegotiationEngine(DataPlan(c=c), edge, operator).run()
        if result.converged:
            assert result.volume >= x_hat_o - (result.rounds + 2)
