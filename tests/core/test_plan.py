"""DataPlan and the Equation-1 charging formula."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.plan import ChargingCycle, DataPlan


class TestChargingCycle:
    def test_duration(self):
        assert ChargingCycle(0.0, 3600.0).duration == 3600.0

    def test_rejects_empty_cycle(self):
        with pytest.raises(ValueError):
            ChargingCycle(10.0, 10.0)

    def test_half_open_membership(self):
        cycle = ChargingCycle(0.0, 10.0)
        assert not cycle.contains(0.0)
        assert cycle.contains(10.0)
        assert cycle.contains(5.0)
        assert not cycle.contains(10.1)


class TestChargeFormula:
    def test_c_zero_charges_received(self):
        assert DataPlan(c=0.0).charge(1000, 900) == 900

    def test_c_one_charges_sent(self):
        assert DataPlan(c=1.0).charge(1000, 900) == 1000

    def test_c_half_splits_loss(self):
        assert DataPlan(c=0.5).charge(1000, 900) == 950

    def test_symmetric_in_flipped_claims(self):
        """Line 8's two branches agree: charge(a,b) == charge(b,a)."""
        plan = DataPlan(c=0.3)
        assert plan.charge(900, 1000) == plan.charge(1000, 900)

    def test_rejects_negative_claims(self):
        with pytest.raises(ValueError):
            DataPlan().charge(-1, 0)

    @given(
        st.integers(min_value=0, max_value=10**9),
        st.integers(min_value=0, max_value=10**9),
        st.floats(min_value=0, max_value=1, allow_nan=False),
    )
    def test_charge_between_min_and_max_claim(self, a, b, c):
        """The charge always lies between the two claims."""
        x = DataPlan(c=c).charge(a, b)
        assert min(a, b) - 1e-6 <= x <= max(a, b) + 1e-6

    @given(
        st.integers(min_value=0, max_value=10**9),
        st.floats(min_value=0, max_value=1, allow_nan=False),
    )
    def test_equal_claims_charge_exactly(self, v, c):
        assert DataPlan(c=c).charge(v, v) == v


class TestExpectedCharge:
    def test_matches_equation_1(self):
        plan = DataPlan(c=0.25)
        assert plan.expected_charge(1000, 800) == 800 + 0.25 * 200

    def test_requires_received_le_sent(self):
        with pytest.raises(ValueError):
            DataPlan().expected_charge(800, 1000)


class TestValidationAndCycles:
    @pytest.mark.parametrize("c", [-0.1, 1.1])
    def test_c_out_of_range(self, c):
        with pytest.raises(ValueError):
            DataPlan(c=c)

    def test_rejects_non_positive_cycle(self):
        with pytest.raises(ValueError):
            DataPlan(cycle_duration_s=0)

    def test_cycles_are_consecutive(self):
        cycles = DataPlan(cycle_duration_s=60.0).cycles(3)
        assert [(c.t_start, c.t_end) for c in cycles] == [
            (0.0, 60.0),
            (60.0, 120.0),
            (120.0, 180.0),
        ]

    def test_cycles_with_offset(self):
        cycles = DataPlan(cycle_duration_s=10.0).cycles(2, t_start=5.0)
        assert cycles[0].t_start == 5.0
        assert cycles[1].t_end == 25.0
