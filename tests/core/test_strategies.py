"""Negotiation strategies: claims, cross-checks and misbehaviour."""

import random

import pytest

from repro.core.strategies import (
    BoundViolatingStrategy,
    HonestStrategy,
    OptimalStrategy,
    PartyKnowledge,
    PartyRole,
    RandomSelfishStrategy,
    StubbornStrategy,
    clamp_to_bounds,
)

EDGE = PartyKnowledge(PartyRole.EDGE, own_record=1000, other_estimate=900)
OPERATOR = PartyKnowledge(PartyRole.OPERATOR, own_record=900, other_estimate=1000)


class TestClampToBounds:
    def test_inside_interval_unchanged(self):
        assert clamp_to_bounds(50, 0, 100) == 50

    def test_clamps_to_interior(self):
        assert clamp_to_bounds(0, 10, 100) == 11
        assert clamp_to_bounds(200, 10, 100) == 99

    def test_unbounded_above(self):
        assert clamp_to_bounds(10**12, 0, None) == 10**12

    def test_degenerate_interval_uses_nearest(self):
        assert clamp_to_bounds(5, 10, 11) == 11


class TestCrossCheck:
    def test_operator_rejects_below_record(self):
        strategy = HonestStrategy(OPERATOR)
        assert not strategy.decide(other_claim=899, own_claim=900)
        assert strategy.decide(other_claim=900, own_claim=900)

    def test_edge_rejects_above_record(self):
        strategy = HonestStrategy(EDGE)
        assert not strategy.decide(other_claim=1001, own_claim=1000)
        assert strategy.decide(other_claim=1000, own_claim=1000)

    def test_tolerance_relaxes_operator_floor(self):
        strategy = HonestStrategy(OPERATOR, accept_tolerance=0.05)
        assert strategy.decide(other_claim=860, own_claim=900)
        assert not strategy.decide(other_claim=850, own_claim=900)

    def test_tolerance_relaxes_edge_ceiling(self):
        strategy = HonestStrategy(EDGE, accept_tolerance=0.05)
        assert strategy.decide(other_claim=1049, own_claim=1000)
        assert not strategy.decide(other_claim=1051, own_claim=1000)

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError):
            HonestStrategy(EDGE, accept_tolerance=-0.1)


class TestHonest:
    def test_claims_truthful_record(self):
        assert HonestStrategy(EDGE).propose(0, None, 0, None) == 1000
        assert HonestStrategy(OPERATOR).propose(0, None, 0, None) == 900


class TestOptimal:
    def test_edge_claims_received_estimate(self):
        """The minimax claim: x_e = x̂_o (Appendix C)."""
        assert OptimalStrategy(EDGE).propose(0, None, 0, None) == 900

    def test_operator_claims_sent_estimate(self):
        """The maximin claim: x_o = x̂_e."""
        assert OptimalStrategy(OPERATOR).propose(0, None, 0, None) == 1000

    def test_later_rounds_walk_toward_peer(self):
        strategy = OptimalStrategy(EDGE)
        first = strategy.propose(0, None, 0, None)
        second = strategy.propose(0, None, 1, last_other_claim=1100)
        assert first < second <= 1100

    def test_claims_respect_bounds(self):
        assert 500 < OptimalStrategy(EDGE).propose(500, 600, 0, None) < 600


class TestRandomSelfish:
    def test_edge_never_overclaims_record(self):
        rng = random.Random(1)
        strategy = RandomSelfishStrategy(EDGE, rng)
        for _ in range(50):
            assert strategy.propose(0, None, 0, None) <= 1000

    def test_operator_never_underclaims_record(self):
        rng = random.Random(2)
        strategy = RandomSelfishStrategy(OPERATOR, rng)
        for _ in range(50):
            assert strategy.propose(0, None, 0, None) >= 900

    def test_claims_vary_between_rounds(self):
        rng = random.Random(3)
        strategy = RandomSelfishStrategy(EDGE, rng)
        claims = {strategy.propose(0, None, i, None) for i in range(20)}
        assert len(claims) > 1

    def test_spread_bounds_draws(self):
        rng = random.Random(4)
        strategy = RandomSelfishStrategy(EDGE, rng, spread=0.1)
        for _ in range(50):
            assert strategy.propose(0, None, 0, None) >= 900  # (1-0.1)*1000

    def test_invalid_spread_rejected(self):
        with pytest.raises(ValueError):
            RandomSelfishStrategy(EDGE, random.Random(0), spread=0.0)


class TestMisbehaviour:
    def test_stubborn_repeats_fixed_claim(self):
        strategy = StubbornStrategy(OPERATOR, fixed_claim=5000)
        assert strategy.propose(0, None, 0, None) == 5000

    def test_stubborn_rejects_everything_else(self):
        strategy = StubbornStrategy(OPERATOR, fixed_claim=5000)
        assert not strategy.decide(other_claim=4999, own_claim=5000)
        assert strategy.decide(other_claim=5000, own_claim=5000)

    def test_bound_violator_ignores_bounds(self):
        strategy = BoundViolatingStrategy(OPERATOR, fixed_claim=10**9)
        assert strategy.propose(100, 200, 0, None) == 10**9


class TestKnowledgeValidation:
    def test_negative_record_rejected(self):
        with pytest.raises(ValueError):
            PartyKnowledge(PartyRole.EDGE, -1, 0)
