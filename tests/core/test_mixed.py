"""Mixed strategies buy nothing: LP confirmation of Theorem 3."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.game import GameInstance
from repro.core.mixed import solve_mixed

instances = st.tuples(
    st.integers(min_value=0, max_value=10**7),
    st.integers(min_value=0, max_value=10**7),
    st.floats(min_value=0.01, max_value=0.99, allow_nan=False),
).map(lambda t: (max(t[0], t[1]), min(t[0], t[1]), t[2]))


class TestKnownInstance:
    def test_game_value_equals_expected_charge(self):
        game = GameInstance(1000, 900, 0.5)
        solution = solve_mixed(game)
        assert solution.value == pytest.approx(game.expected, rel=1e-6)

    def test_edge_mixture_concentrates_on_received(self):
        game = GameInstance(1000, 900, 0.5)
        solution = solve_mixed(game)
        assert solution.claims[np.argmax(solution.edge_strategy)] == 900
        assert solution.edge_strategy.max() > 0.99

    def test_operator_mixture_concentrates_on_sent(self):
        game = GameInstance(1000, 900, 0.5)
        solution = solve_mixed(game)
        assert solution.claims[np.argmax(solution.operator_strategy)] == 1000
        assert solution.operator_strategy.max() > 0.99

    def test_degenerate_no_loss_game(self):
        game = GameInstance(500, 500, 0.7)
        solution = solve_mixed(game)
        assert solution.value == pytest.approx(500.0)
        assert len(solution.claims) == 1

    def test_strategies_are_distributions(self):
        solution = solve_mixed(GameInstance(10_000, 9_000, 0.3))
        for mixture in (solution.edge_strategy, solution.operator_strategy):
            assert mixture.sum() == pytest.approx(1.0)
            assert (mixture >= 0).all()


class TestProperty:
    @settings(max_examples=30, deadline=None)
    @given(instances)
    def test_lp_value_matches_analytic_saddle_point(self, instance):
        """Randomization never beats TLC's deterministic claims."""
        x_hat_e, x_hat_o, c = instance
        game = GameInstance(x_hat_e, x_hat_o, c)
        solution = solve_mixed(game)
        # Grid rounding bounds the discretization error.
        span = max(1, x_hat_e - x_hat_o)
        tolerance = max(1.0, span / 16)
        assert abs(solution.value - game.expected) <= tolerance

    @settings(max_examples=20, deadline=None)
    @given(instances)
    def test_pure_claims_dominate_their_mixtures(self, instance):
        x_hat_e, x_hat_o, c = instance
        game = GameInstance(x_hat_e, x_hat_o, c)
        solution = solve_mixed(game)
        # The pure minimax claims achieve (at least) the LP value.
        pure = game.charge(game.edge_minimax_claim(), game.operator_maximin_claim())
        span = max(1, x_hat_e - x_hat_o)
        assert abs(pure - solution.value) <= max(1.0, span / 16)
