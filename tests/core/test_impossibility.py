"""Theorem 1 demonstrated: pick two of {consistency, availability, loss}."""

import pytest

from repro.core.impossibility import AvailableCounterPair, ConsistentCounterPair
from repro.netsim.events import EventLoop


class TestConsistentDesign:
    def test_lossless_run_is_consistent_and_available(self):
        loop = EventLoop()
        pair = ConsistentCounterPair(loop)
        for _ in range(10):
            pair.transfer(100)
        loop.run()
        outcome = pair.query()
        assert outcome.answered and outcome.consistent
        assert outcome.value == 1000

    def test_query_suspended_while_update_in_flight(self):
        loop = EventLoop()
        pair = ConsistentCounterPair(loop)
        pair.transfer(100)
        assert not pair.query().answered  # ack not yet back

    def test_partition_stalls_queries_indefinitely(self):
        """Appendix A's worst case: a dead-zone device. The CP design's
        query never returns — availability is forfeited."""
        loop = EventLoop()
        pair = ConsistentCounterPair(loop)
        pair.partition(True)
        pair.transfer(100)
        loop.run_until(10_000.0)  # wait as long as you like
        assert not pair.query().answered

    def test_synchronization_delays_data(self):
        """The loss-latency trade-off: counting waits a full round trip."""
        loop = EventLoop()
        pair = ConsistentCounterPair(loop, latency_s=0.05)
        pair.transfer(100)
        loop.run()
        assert pair.data_delay_total == pytest.approx(0.10, abs=0.001)

    def test_never_answers_inconsistently(self):
        loop = EventLoop()
        pair = ConsistentCounterPair(loop)
        pair.partition(True)
        for _ in range(5):
            pair.transfer(100)
        loop.run_until(100.0)
        outcome = pair.query()
        assert not outcome.answered  # blocked, but never wrong


class TestAvailableDesign:
    def test_always_answers(self):
        loop = EventLoop()
        pair = AvailableCounterPair(loop)
        pair.partition(True)
        pair.transfer(100)
        assert pair.query().answered

    def test_loss_creates_divergence(self):
        """The 4G/5G reality: queries return, counters disagree — the
        charging gap equals exactly the lost bytes."""
        loop = EventLoop()
        pair = AvailableCounterPair(loop)
        pair.transfer(100)
        loop.run()
        pair.partition(True)
        for _ in range(3):
            pair.transfer(100)
        loop.run_until(10.0)
        outcome = pair.query()
        assert outcome.answered and not outcome.consistent
        assert pair.divergence == 300

    def test_no_loss_no_divergence(self):
        loop = EventLoop()
        pair = AvailableCounterPair(loop)
        for _ in range(10):
            pair.transfer(50)
        loop.run()
        assert pair.divergence == 0
        assert pair.query().consistent


class TestTheoremOne:
    def test_no_design_gets_both_under_loss(self):
        """The theorem's statement over the two archetypes: under a
        partition, CP loses availability, AP loses consistency."""
        loop = EventLoop()
        cp = ConsistentCounterPair(loop)
        ap = AvailableCounterPair(loop)
        for pair in (cp, ap):
            pair.partition(True)
            pair.transfer(100)
        loop.run_until(1000.0)
        cp_outcome, ap_outcome = cp.query(), ap.query()
        assert not cp_outcome.answered  # consistent but unavailable
        assert ap_outcome.answered and not ap_outcome.consistent
