"""Rubinstein alternating-offers strategies as TLC comparators."""

import pytest

from repro.core.bargaining import RubinsteinStrategy, rubinstein_split
from repro.core.negotiation import NegotiationEngine
from repro.core.plan import DataPlan
from repro.core.strategies import OptimalStrategy, PartyKnowledge, PartyRole

X_E, X_O = 1_000_000, 900_000
EDGE = PartyKnowledge(PartyRole.EDGE, X_E, X_O)
OPERATOR = PartyKnowledge(PartyRole.OPERATOR, X_O, X_E)
PLAN = DataPlan(c=0.5)


class TestSplitFormula:
    def test_symmetric_patient_players_near_half(self):
        assert rubinstein_split(0.99, 0.99) == pytest.approx(0.5, abs=0.01)

    def test_impatient_responder_concedes_more(self):
        assert rubinstein_split(0.9, 0.5) > rubinstein_split(0.9, 0.9)

    def test_first_mover_advantage(self):
        """With equal discounting the proposer takes more than half."""
        assert rubinstein_split(0.8, 0.8) > 0.5

    def test_validates_delta(self):
        with pytest.raises(ValueError):
            rubinstein_split(1.0, 0.5)


class TestStrategy:
    def _run(self, edge_delta=0.9, operator_delta=0.9):
        engine = NegotiationEngine(
            PLAN,
            RubinsteinStrategy(EDGE, delta=edge_delta),
            RubinsteinStrategy(OPERATOR, delta=operator_delta),
            max_rounds=64,
        )
        return engine.run()

    def test_converges_within_theorem2_bound(self):
        result = self._run()
        assert result.converged
        assert X_O <= result.volume <= X_E

    def test_opening_claims_at_preferred_ends(self):
        edge = RubinsteinStrategy(EDGE, delta=0.9)
        operator = RubinsteinStrategy(OPERATOR, delta=0.9)
        assert edge.propose(-1, None, 0, None) == X_O
        assert operator.propose(-1, None, 0, None) == X_E

    def test_concession_moves_toward_counterpart(self):
        edge = RubinsteinStrategy(EDGE, delta=0.8)
        first = edge.propose(-1, None, 0, None)
        second = edge.propose(-1, None, 1, last_other_claim=X_E)
        assert first < second < X_E

    def test_impatient_party_concedes_more_surplus(self):
        patient_outcome = self._run(edge_delta=0.95, operator_delta=0.95).volume
        impatient_edge = self._run(edge_delta=0.5, operator_delta=0.95).volume
        assert impatient_edge >= patient_outcome

    def test_slower_than_tlc_optimal(self):
        """The point of TLC's minimax design: classical bargaining takes
        multiple rounds where TLC-optimal takes one."""
        bargaining = self._run()
        tlc = NegotiationEngine(
            PLAN, OptimalStrategy(EDGE), OptimalStrategy(OPERATOR)
        ).run()
        assert tlc.rounds == 1
        assert bargaining.rounds > tlc.rounds

    def test_never_concedes_past_record(self):
        edge = RubinsteinStrategy(EDGE, delta=0.5)
        claim = edge.propose(-1, None, 10, last_other_claim=2 * X_E)
        assert claim <= X_E

    def test_validates_delta(self):
        with pytest.raises(ValueError):
            RubinsteinStrategy(EDGE, delta=1.5)
