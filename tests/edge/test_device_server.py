"""EdgeDevice and EdgeServer endpoints."""

import pytest

from repro.cellular import CellularNetwork, RadioProfile, make_test_imsi
from repro.edge.device import DEVICE_PROFILES, EL20, PIXEL_2XL, S7_EDGE, Z840, EdgeDevice
from repro.edge.server import EdgeServer
from repro.netsim import EventLoop, StreamRegistry


def build(seed=1):
    loop = EventLoop()
    net = CellularNetwork(loop, StreamRegistry(seed))
    imsi = make_test_imsi(1)
    device = EdgeDevice(loop, imsi, "app")
    access = net.attach_device(imsi, RadioProfile(), deliver=device.deliver)
    device.bind(access)
    net.create_bearer(imsi, "app")
    server = EdgeServer(loop, net, "app")
    return loop, net, device, server


class TestDevice:
    def test_send_counts_before_transmission(self):
        """The edge's x̂_e view: counted at the app, loss or not."""
        loop, net, device, server = build()
        device.access.radio.connected = False  # force outage
        device.send(1000)
        assert device.ul_monitor.total == 1000

    def test_unbound_device_cannot_send(self):
        device = EdgeDevice(EventLoop(), make_test_imsi(2), "x")
        with pytest.raises(RuntimeError):
            device.send(100)

    def test_receive_counts_and_forwards_to_app(self):
        loop, net, device, server = build()
        received = []
        device.on_receive = received.append
        server.send(800)
        loop.run()
        assert device.dl_monitor.total == 800
        assert len(received) == 1

    def test_sequence_numbers_increment(self):
        loop, net, device, server = build()
        p1 = device.send(100)
        p2 = device.send(100)
        assert p2.seq == p1.seq + 1


class TestServer:
    def test_send_counts_at_server_monitor(self):
        loop, net, device, server = build()
        server.send(1200)
        assert server.dl_monitor.total == 1200

    def test_uplink_arrivals_counted_and_timed(self):
        loop, net, device, server = build()
        device.send(500)
        loop.run()
        assert server.ul_monitor.total == 500
        assert server.stats.received == 1
        assert server.stats.latencies[0] > 0

    def test_uplink_forwarded_to_app_handler(self):
        loop, net, device, server = build()
        seen = []
        server.on_receive = seen.append
        device.send(400)
        loop.run()
        assert len(seen) == 1


class TestProfiles:
    def test_all_testbed_devices_present(self):
        assert {p.name for p in (EL20, PIXEL_2XL, S7_EDGE, Z840)} == set(DEVICE_PROFILES)

    def test_workstation_fastest_at_crypto(self):
        assert Z840.sign_ms < min(EL20.sign_ms, PIXEL_2XL.sign_ms, S7_EDGE.sign_ms)

    def test_pixel_slowest_overall(self):
        """Matches Figure 17's ordering: Pixel 2 XL has the slowest PoC path."""
        assert PIXEL_2XL.sign_ms >= S7_EDGE.sign_ms >= EL20.sign_ms
