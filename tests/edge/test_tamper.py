"""Tamper adversaries and the modem trust boundary."""

import pytest

from repro.edge.monitors import TrafficMonitor
from repro.edge.tamper import BillCycleResetTamper, CdrInflationTamper, ScalingTamper
from repro.netsim.events import EventLoop
from repro.netsim.packet import Direction, Packet


def monitored_bytes(duration=100, per_second=100):
    loop = EventLoop()
    monitor = TrafficMonitor(loop, "victim")
    for t in range(duration):
        loop.schedule_at(
            t + 0.5,
            monitor.observe,
            Packet(size=per_second, flow_id="f", direction=Direction.UPLINK),
        )
    loop.run()
    return monitor


class TestScalingTamper:
    def test_under_reports(self):
        monitor = monitored_bytes()
        tampered = ScalingTamper(monitor, 0.5)
        assert tampered.reported_usage(0, 100) == 5000

    def test_over_reports(self):
        monitor = monitored_bytes()
        assert ScalingTamper(monitor, 2.0).reported_usage(0, 100) == 20_000

    def test_rejects_negative_factor(self):
        with pytest.raises(ValueError):
            ScalingTamper(monitored_bytes(10), -1.0)


class TestBillCycleReset:
    def test_erases_usage_before_reset(self):
        """The paper's reference [31]: clearing stats mid-cycle."""
        monitor = monitored_bytes()
        tampered = BillCycleResetTamper(monitor, reset_at=60.0)
        assert tampered.reported_usage(0, 100) == 4000

    def test_reset_after_cycle_reports_zero(self):
        monitor = monitored_bytes()
        assert BillCycleResetTamper(monitor, reset_at=200.0).reported_usage(0, 100) == 0

    def test_reset_before_cycle_is_noop(self):
        monitor = monitored_bytes()
        tampered = BillCycleResetTamper(monitor, reset_at=0.0)
        assert tampered.reported_usage(0, 100) == monitor.reported_usage(0, 100)


class TestCdrInflation:
    def test_adds_flat_bytes(self):
        monitor = monitored_bytes()
        assert CdrInflationTamper(monitor, 123_456).reported_usage(0, 100) == 133_456

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            CdrInflationTamper(monitored_bytes(10), -1)


class TestTrustBoundary:
    def test_modem_counters_not_wrappable(self):
        """HardwareModem exposes no ``reported_usage``: the tamper classes
        structurally cannot wrap it — the §5.4 trust argument."""
        from repro.cellular.rrc import HardwareModem

        modem = HardwareModem(EventLoop())
        assert not hasattr(modem, "reported_usage")

    def test_tamper_composition(self):
        """A determined adversary can stack tampers on user-space views."""
        monitor = monitored_bytes()
        stacked = ScalingTamper(BillCycleResetTamper(monitor, 50.0), 0.5)
        assert stacked.reported_usage(0, 100) == 2500
