"""Traffic monitors: skewed cycle boundaries and RRC-report assembly."""

import pytest

from repro.cellular.rrc import CounterCheckResponse
from repro.edge.monitors import CounterCheckMonitor, TrafficMonitor, record_error_ratio
from repro.netsim.events import EventLoop
from repro.netsim.packet import Direction, Packet


def packet(size=100):
    return Packet(size=size, flow_id="f", direction=Direction.UPLINK)


class TestTrafficMonitor:
    def _steady_monitor(self, rate_bytes_per_s=100, duration=100):
        loop = EventLoop()
        monitor = TrafficMonitor(loop, "m")
        for t in range(duration):
            loop.schedule_at(t + 0.5, monitor.observe, packet(rate_bytes_per_s))
        loop.run()
        return monitor

    def test_true_usage_exact(self):
        monitor = self._steady_monitor()
        assert monitor.true_usage(0, 50) == 5000
        assert monitor.true_usage(50, 100) == 5000

    def test_zero_skew_reports_truth(self):
        monitor = self._steady_monitor()
        assert monitor.reported_usage(0, 50) == monitor.true_usage(0, 50)

    def test_positive_skew_cuts_cycle_short(self):
        """A clock running ahead stops counting early: under-report."""
        monitor = self._steady_monitor()
        monitor.set_skew(10.0)
        assert monitor.reported_usage(0, 100) == 9000

    def test_negative_skew_extends_cycle(self):
        monitor = self._steady_monitor()
        monitor.set_skew(-5.0)
        # Window extends past the data; no extra bytes exist there.
        assert monitor.reported_usage(0, 50) == 5500

    def test_relative_error_tracks_skew_over_cycle(self):
        """The Figure 18 mechanism: γ ≈ |skew| / cycle length."""
        monitor = self._steady_monitor()
        monitor.set_skew(2.0)
        error = record_error_ratio(monitor.reported_usage(0, 100), monitor.true_usage(0, 100))
        assert error == pytest.approx(0.02, abs=0.005)

    def test_observe_bytes_counts_raw(self):
        loop = EventLoop()
        monitor = TrafficMonitor(loop, "m")
        monitor.observe_bytes(1234)
        assert monitor.total == 1234


class TestCounterCheckMonitor:
    def _report(self, monitor, loop, t, ul, dl):
        loop.schedule_at(t, monitor.on_report, CounterCheckResponse(t, ul, dl))

    def test_assembles_usage_from_cumulative_reports(self):
        loop = EventLoop()
        monitor = CounterCheckMonitor(loop)
        self._report(monitor, loop, 5.0, 100, 1000)
        self._report(monitor, loop, 10.0, 250, 2500)
        loop.run()
        assert monitor.reported_usage(0, 7) == 1000
        assert monitor.reported_usage(7, 12) == 1500
        assert monitor.reported_uplink_usage(0, 12) == 250

    def test_quantized_at_report_epochs(self):
        """Traffic after the last report is invisible until the next one."""
        loop = EventLoop()
        monitor = CounterCheckMonitor(loop)
        self._report(monitor, loop, 5.0, 0, 1000)
        loop.run()
        assert monitor.reported_usage(0, 4.9) == 0

    def test_counter_reset_rebaselines(self):
        """A modem reboot restarts the cumulative counters from zero; the
        monitor must re-baseline (delta = new absolute value), not crash."""
        loop = EventLoop()
        monitor = CounterCheckMonitor(loop)
        self._report(monitor, loop, 1.0, 100, 1000)
        self._report(monitor, loop, 2.0, 30, 400)  # detach/reattach reset
        self._report(monitor, loop, 3.0, 50, 700)
        loop.run()
        assert monitor.resets_observed == 1
        assert monitor.total == 1000 + 400 + 300
        assert monitor.reported_uplink_usage(0, 10) == 100 + 30 + 20
        assert monitor.reported_usage(1.5, 2.5) == 400

    def test_reset_on_one_counter_only(self):
        """Only the backwards counter re-baselines; the other keeps its delta."""
        loop = EventLoop()
        monitor = CounterCheckMonitor(loop)
        self._report(monitor, loop, 1.0, 100, 1000)
        self._report(monitor, loop, 2.0, 150, 900)
        loop.run()
        assert monitor.resets_observed == 1
        assert monitor.reported_uplink_usage(0, 10) == 150
        assert monitor.total == 1000 + 900

    def test_no_resets_observed_on_monotone_reports(self):
        loop = EventLoop()
        monitor = CounterCheckMonitor(loop)
        self._report(monitor, loop, 1.0, 0, 1000)
        self._report(monitor, loop, 2.0, 0, 1000)  # idle period: equal is fine
        loop.run()
        assert monitor.resets_observed == 0

    def test_skew_shifts_boundary(self):
        loop = EventLoop()
        monitor = CounterCheckMonitor(loop)
        self._report(monitor, loop, 5.0, 0, 1000)
        self._report(monitor, loop, 9.0, 0, 2000)
        loop.run()
        monitor.set_skew(2.0)
        assert monitor.reported_usage(0, 10) == 1000  # boundary cut at t=8

    def test_report_counter(self):
        loop = EventLoop()
        monitor = CounterCheckMonitor(loop)
        self._report(monitor, loop, 1.0, 0, 10)
        loop.run()
        assert monitor.reports_received == 1
        assert monitor.total == 10


class TestErrorRatio:
    def test_zero_on_exact(self):
        assert record_error_ratio(100, 100) == 0.0

    def test_symmetric_magnitude(self):
        assert record_error_ratio(90, 100) == pytest.approx(0.1)
        assert record_error_ratio(110, 100) == pytest.approx(0.1)

    def test_idle_cycle_defined_as_zero(self):
        assert record_error_ratio(0, 0) == 0.0

    def test_phantom_bytes_on_idle_cycle_is_infinite(self):
        assert record_error_ratio(5, 0) == float("inf")
