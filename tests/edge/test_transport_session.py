"""ReliableUplinkSession over the full simulated cellular path."""

import pytest

from repro.cellular import CellularNetwork, RadioProfile, make_test_imsi
from repro.edge import EdgeDevice, EdgeServer, ReliableUplinkSession
from repro.netsim import Direction, EventLoop, StreamRegistry


def build(base_loss=0.0, seed=1, rto_s=0.15):
    loop = EventLoop()
    net = CellularNetwork(loop, StreamRegistry(seed))
    imsi = make_test_imsi(1)
    device = EdgeDevice(loop, imsi, "tcp-app")
    access = net.attach_device(imsi, RadioProfile(base_loss=base_loss),
                               deliver=device.deliver)
    device.bind(access)
    net.create_bearer(imsi, "tcp-app")
    server = EdgeServer(loop, net, "tcp-app")
    session = ReliableUplinkSession(loop, device, server, rto_s=rto_s)
    return loop, net, device, server, session


class TestCleanPath:
    def test_full_delivery(self):
        loop, net, device, server, session = build()
        session.offer(50_000)
        loop.run()
        assert session.goodput_bytes == 50_000
        assert session.sender.retransmitted_bytes == 0

    def test_acks_flow_downlink(self):
        loop, net, device, server, session = build()
        session.offer(2800)  # two segments
        loop.run()
        assert device.dl_monitor.total == 2 * 64  # two ACKs


class TestLossyPath:
    def test_losses_recovered(self):
        """TCP closes the sent-vs-received gap that UDP leaves open."""
        loop, net, device, server, session = build(base_loss=0.2, seed=3)
        session.offer(100_000)
        loop.run_until(30.0)
        assert session.goodput_bytes == 100_000
        assert session.sender.retransmitted_bytes > 0

    def test_retransmissions_are_charged(self):
        """The gateway bills the recovery traffic too."""
        loop, net, device, server, session = build(base_loss=0.2, seed=3)
        session.offer(100_000)
        loop.run_until(30.0)
        gateway = net.gateway_usage("tcp-app", 0, loop.now(), Direction.UPLINK)
        assert gateway > 100_000  # goodput plus recovered losses

    def test_recovery_delays_delivery(self):
        """Theorem 1's trade-off on the real path."""
        loop_clean, *_, clean = build(base_loss=0.0, seed=5)
        clean.offer(100_000)
        loop_clean.run_until(30.0)
        loop_lossy, *_, lossy = build(base_loss=0.25, seed=5)
        lossy.offer(100_000)
        loop_lossy.run_until(30.0)
        assert lossy.mean_delivery_latency() > 2 * clean.mean_delivery_latency()
