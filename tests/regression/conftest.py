"""Engine configuration for the tier-2 golden regression suite.

Golden runs re-execute the benchmark harness's experiment invocations;
pointing the engine at the shared content-addressed cache means a
baseline check only simulates scenarios whose config (or the codec)
changed since the cache was filled.
"""

import os
from pathlib import Path

import pytest

from repro.experiments import parallel

REPO_ROOT = Path(__file__).resolve().parents[2]
CACHE_DIR = REPO_ROOT / "benchmarks" / ".cache"
BASELINES_PATH = REPO_ROOT / "benchmarks" / "baselines.json"


@pytest.fixture(scope="session", autouse=True)
def golden_engine():
    """Use the benchmark cache (env-overridable) for golden runs."""
    workers = int(os.environ.get("REPRO_WORKERS", "0") or 0)
    cache_dir = os.environ.get("REPRO_CACHE_DIR", str(CACHE_DIR))
    if cache_dir.lower() in ("", "0", "off", "none"):
        cache_dir = None
    parallel.configure(workers=workers, cache_dir=cache_dir)
    yield
    parallel.configure(workers=0, cache_dir=os.environ.get("REPRO_CACHE_DIR") or None)
