"""Tier-2 golden gate: every figure/table quantity vs. baselines.json.

EXPERIMENTS.md's tables as an executable contract: each test re-runs the
experiment with the benchmark harness's exact kwargs (memoized per
session, scenario-level cache underneath) and asserts the selected
quantity sits inside its recorded tolerance band.  A failure message
carries the measured value, the expectation and the band.

Deliberate-perturbation tests prove the gate actually bites: a value
nudged just past its band must fail the check.
"""

import pytest

from repro.experiments.goldens import GOLDEN_RUNS, GoldenRunner
from repro.obs import check_baseline, load_baselines

from .conftest import BASELINES_PATH

pytestmark = pytest.mark.slow

BASELINES = load_baselines(BASELINES_PATH)


@pytest.fixture(scope="module")
def runner():
    return GoldenRunner()


@pytest.mark.parametrize("baseline", BASELINES, ids=[b.id for b in BASELINES])
def test_golden_quantity(runner, baseline):
    measured = runner.measure(baseline.experiment, baseline.select)
    check = check_baseline(measured, baseline)
    assert check.ok, check.describe()


def test_every_golden_experiment_is_gated():
    """No registered golden run may silently lose its baseline coverage."""
    assert {b.experiment for b in BASELINES} == set(GOLDEN_RUNS)


class TestGateBites:
    """The deliberate-perturbation proof: drifted values must fail."""

    @pytest.mark.parametrize("direction", [+1, -1])
    def test_value_just_outside_band_fails(self, direction):
        for baseline in BASELINES[:10]:
            drifted = baseline.expected + direction * baseline.band * 1.01
            assert not check_baseline(drifted, baseline).ok, baseline.id

    def test_value_inside_band_passes(self):
        for baseline in BASELINES:
            nudged = baseline.expected + baseline.band * 0.99
            assert check_baseline(nudged, baseline).ok, baseline.id

    def test_perturbed_experiment_result_trips_the_gate(self, runner):
        """Perturb a real measured table cell past tolerance: gate fails."""
        baseline = next(b for b in BASELINES if b.experiment == "table2")
        measured = runner.measure(baseline.experiment, baseline.select)
        perturbed = measured + (baseline.band + abs(measured)) * 1.5
        assert not check_baseline(perturbed, baseline).ok
