"""Differential parity fuzzing: batched vs reference over random chaos.

The hand-picked matrix in ``test_parity.py`` pins the configurations we
thought of; this harness searches the ones we didn't.  Hypothesis draws
a :class:`~repro.experiments.scenarios.ScenarioConfig` across every
dimension the general executor mirrors — direction × workload ×
congestion × outage η × quota × RRC pressure (cycle length drives the
counter-check interval, frame rate drives release/re-setup cycling) ×
handover schedule × fault schedule (random specs over every fault kind
with glob-targeted injection points) — runs the same scenario on both
kernels and requires the *entire observable simulation state* to match
bit-for-bit: usage records, raw counter point series, RSS walks, queue
contents, policer internals, the fault trace, every RNG stream's state
and the full metrics snapshot.

Profiles come from ``tests/conftest.py``: ``dev`` (default) runs 25
derandomized examples for the inner loop; ``HYPOTHESIS_PROFILE=ci``
runs 250.  Whole-scenario doubles are tier-2 work, so the module is
marked ``slow`` and excluded from the tier-1 command by ``addopts``.
"""

from dataclasses import replace

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.experiments.runner import ScenarioRunner
from repro.experiments.scenarios import ALL_APPS
from repro.netsim.faults import (
    BURST_LOSS,
    CLOCK_DRIFT,
    CLOCK_SKEW,
    CORRUPT,
    DUPLICATE,
    FAULT_KINDS,
    REORDER,
    FaultSchedule,
    FaultSpec,
)

pytestmark = pytest.mark.slow


def counter_points(counter):
    return (list(counter._times), list(counter._cums), counter._total)


def flow(stats):
    return (stats.packets, stats.bytes)


def packet_key(p):
    # Everything but pkt_id: that field is a process-global monotonic
    # counter, so it cannot match between two runs in one process (two
    # reference runs differ in it too).
    return (
        p.size,
        p.flow_id,
        p.direction,
        p.qci,
        p.transport,
        p.created_at,
        p.seq,
        p.dropped_at,
        p.delivered_at,
    )


def queue_state(q):
    return (
        [packet_key(p) for p in q._queue],
        q._bytes,
        q.capacity_bytes,
        q.drop_layer,
    )


def deep_state(runner, result):
    """Every observable the simulation produces, as one comparable value.

    Strictly wider than what the charging study reads: raw point series,
    buffered packets and RNG stream states catch divergence that happens
    to cancel out by the next cycle boundary.
    """
    radio = runner.access.radio
    ue = runner.network.enodeb.ue(str(runner.device.imsi))
    bearer = runner.network.bearers.by_flow(runner.flow_id)
    enodeb = runner.network.enodeb
    policer = runner.network.spgw._policers.get(runner.flow_id)
    return {
        "usages": result.usages,
        "outcomes": result.outcomes,
        "bitrate": result.measured_bitrate_bps,
        "points": [
            counter_points(c)
            for c in (
                runner.device.ul_monitor.counter,
                runner.device.dl_monitor.counter,
                runner.server.ul_monitor.counter,
                runner.server.dl_monitor.counter,
                runner.access.modem.ul_sent,
                runner.access.modem.dl_received,
                runner.counter_monitor._dl_reports,
                runner.counter_monitor._ul_reports,
                bearer.uplink,
                bearer.downlink,
            )
        ],
        "radio": (radio._current_rss, radio.connected, list(radio.rss_history)),
        "rrc": (
            ue.rrc.state,
            ue.rrc.setups,
            ue.rrc.releases,
            ue.rrc.counter_checks_sent,
        ),
        "rlf_count": ue.rlf_count,
        "queues": (queue_state(ue.dl_buffer), queue_state(runner.access._ul_buffer)),
        "policer": policer
        and (policer.rate_bps, policer._tokens, policer._last),
        "handover": runner.handover
        and (runner.handover._saved_capacity, runner.handover._saved_drop_layer),
        "air": [
            flow(getattr(air, pick))
            for air in (enodeb.uplink_air, enodeb.downlink_air)
            for pick in ("offered", "dropped", "transmitted")
        ],
        "middlebox": (
            flow(runner.network.middlebox.passed),
            flow(runner.network.middlebox.dropped),
        ),
        "latencies": runner.server.stats.latencies,
        "fault_trace": result.fault_trace,
        "rng": {
            name: stream.getstate()
            for name, stream in runner.rng._streams.items()
        },
        "net_rng": {
            name: stream.getstate()
            for name, stream in runner.network.rng._streams.items()
        }
        if runner.network.rng is not runner.rng
        else None,
        "metrics": runner.metrics.snapshot().to_dict(),
    }


#: Glob patterns exercising every match shape a schedule can take:
#: exact points, wildcards spanning both lane points, clock-only
#: targets, and globs matching nothing at all (which must leave the
#: lane on the fold loops with zero fault RNG draws).
FUZZ_TARGETS = [
    "*", "uplink", "downlink", "*link*",
    "modem", "edge-clock", "operator-clock", "no-match-*",
]

_PROB_KINDS = (BURST_LOSS, REORDER, DUPLICATE, CORRUPT)


@st.composite
def fault_schedules(draw):
    """1–4 random specs over every fault kind and target shape."""
    specs = []
    for _ in range(draw(st.integers(min_value=1, max_value=4))):
        kind = draw(st.sampled_from(FAULT_KINDS))
        if kind in _PROB_KINDS:
            magnitude = draw(st.sampled_from([0.02, 0.1, 0.3, 0.8]))
        elif kind == CLOCK_SKEW:
            magnitude = draw(st.sampled_from([-0.05, 0.05, 0.2]))
        elif kind == CLOCK_DRIFT:
            magnitude = draw(st.sampled_from([-400.0, 150.0, 300.0]))
        else:
            magnitude = 1.0
        specs.append(
            FaultSpec(
                kind,
                start=draw(st.sampled_from([0.0, 1.0, 5.0, 9.5])),
                duration=draw(st.sampled_from([None, 0.5, 2.0, 6.0])),
                target=draw(st.sampled_from(FUZZ_TARGETS)),
                magnitude=magnitude,
                jitter_s=draw(st.sampled_from([0.0, 0.01, 0.05]))
                if kind in (REORDER, DUPLICATE)
                else 0.0,
            )
        )
    return FaultSchedule(name="fuzz", specs=tuple(specs))


@st.composite
def chaos_configs(draw):
    """A ScenarioConfig across every batched-eligible chaos dimension."""
    base = draw(st.sampled_from(ALL_APPS))  # direction × workload × qci
    kwargs = dict(
        seed=draw(st.integers(min_value=0, max_value=2**16)),
        n_cycles=draw(st.sampled_from([1, 2])),
        # Short cycles also squeeze the derived RRC counter-check
        # interval down to its 50 ms floor — maximum check pressure.
        cycle_duration_s=draw(st.sampled_from([4.0, 8.0, 15.0])),
        background_mbps=draw(st.sampled_from([0.0, 0.0, 40.0, 80.0])),
    )
    if draw(st.booleans()):
        kwargs["outage_eta"] = draw(st.sampled_from([0.02, 0.05, 0.1, 0.25]))
        kwargs["mean_outage_s"] = draw(st.sampled_from([0.5, 1.93, 4.0]))
    if draw(st.booleans()):
        kwargs["quota_bytes"] = draw(
            st.sampled_from([20_000, 60_000, 150_000, 1_000_000])
        )
        kwargs["quota_throttle_bps"] = draw(
            st.sampled_from([64_000.0, 128_000.0, 256_000.0])
        )
    if draw(st.booleans()):
        kwargs["handover_interval_s"] = draw(st.sampled_from([1.5, 3.0, 6.0]))
        kwargs["handover_interruption_s"] = draw(st.sampled_from([0.02, 0.05, 0.2]))
        kwargs["handover_x2"] = draw(st.booleans())
    if draw(st.booleans()):
        kwargs["sla_budget_s"] = draw(st.sampled_from([0.0001, 0.05]))
    if draw(st.booleans()):
        kwargs["faults"] = draw(fault_schedules())
    config = base.with_(**kwargs)
    # RRC release/re-setup cycling: sparse frame rates idle past the
    # 10 s inactivity timeout between frames.
    if draw(st.booleans()):
        config = config.with_(
            workload=replace(config.workload, fps=draw(st.sampled_from([0.05, 0.5])))
        )
    return config


@given(config=chaos_configs())
def test_batched_reference_parity_fuzz(config):
    ref = ScenarioRunner(config, kernel="reference")
    bat = ScenarioRunner(config, kernel="batched")
    ref_state = deep_state(ref, ref.run())
    bat_state = deep_state(bat, bat.run())
    assert bat.kernel_used == "batched"
    assert ref.kernel_used == "reference"
    for key in ref_state:
        assert ref_state[key] == bat_state[key], f"divergence in {key!r}"
