"""Adapter eligibility: one test per remaining fallback reason.

The batched kernel now covers outage, quota, RSS, handover and
fault-schedule sessions, so the refusal list shrank to genuine
unsupported shapes (app hooks, extreme frame rates) and not-fresh state
that would make the lane's bulk counter installs wrong.  Each test builds a
real ScenarioRunner, perturbs the *minimal* piece of state that a given
check guards, and asserts the exact reason string — so a future
eligibility relaxation has to consciously delete a test, and an
accidental tightening shows up as a new fallback.
"""

from dataclasses import replace

from repro.cellular.air import RateWindow
from repro.experiments.runner import ScenarioRunner
from repro.experiments.scenarios import VRIDGE_DL, WEBCAM_UDP_UL
from repro.kernel.adapter import build_scenario_lane
from repro.netsim.faults import FaultSchedule, FaultSpec
from repro.netsim.packet import Direction, Packet

SHORT = dict(n_cycles=1, cycle_duration_s=5.0)


def make_runner(**overrides):
    return ScenarioRunner(WEBCAM_UDP_UL.with_(**overrides, **SHORT))


def reason_for(runner):
    lane, reason = build_scenario_lane(runner)
    assert lane is None
    return reason


class TestRefusals:
    def test_fps_above_bound(self):
        runner = make_runner(
            workload=replace(WEBCAM_UDP_UL.workload, fps=500.0)
        )
        assert "above the kernel bound" in reason_for(runner)

    def test_on_receive_hook(self):
        runner = make_runner()
        runner.device.on_receive = lambda packet: None
        assert reason_for(runner) == "application on_receive hook installed"

    def test_radio_disconnected(self):
        runner = make_runner()
        runner.access.radio.connected = False
        assert reason_for(runner) == "radio disconnected at simulate start"

    def test_uplink_buffer_not_empty(self):
        runner = make_runner()
        runner.access._ul_buffer.push(
            Packet(size=100, flow_id=runner.flow_id, direction=Direction.UPLINK)
        )
        assert reason_for(runner) == "uplink modem buffer is not empty"

    def test_rss_history_not_fresh(self):
        runner = make_runner(outage_eta=0.05)
        radio = runner.access.radio
        radio.rss_history.append(radio.rss_history[0])
        assert reason_for(runner) == "RSS history not fresh"

    def test_policer_already_installed(self):
        from repro.cellular.gateway import TokenBucket

        runner = make_runner()
        runner.network.spgw._policers[runner.flow_id] = TokenBucket(
            runner.loop, 64_000.0
        )
        assert reason_for(runner) == "token-bucket policer already installed"

    def test_ue_detached(self):
        runner = make_runner()
        runner.network.enodeb.ue(str(runner.device.imsi)).attached = False
        assert reason_for(runner) == "UE detached at simulate start"

    def test_downlink_buffer_not_empty(self):
        runner = make_runner()
        ue = runner.network.enodeb.ue(str(runner.device.imsi))
        ue.dl_buffer.push(
            Packet(size=100, flow_id=runner.flow_id, direction=Direction.DOWNLINK)
        )
        assert reason_for(runner) == "downlink buffer is not empty"

    def test_no_bearer(self):
        runner = make_runner()
        runner.flow_id = "missing-flow"
        assert reason_for(runner) == "no bearer for this flow"

    def test_bearer_inactive(self):
        runner = make_runner()
        runner.network.bearers.by_flow(runner.flow_id).active = False
        assert reason_for(runner) == "bearer inactive at simulate start"

    def test_air_foreground_busy(self):
        runner = make_runner()
        runner.network.enodeb.uplink_air._foreground[9] = RateWindow()
        assert (
            reason_for(runner) == "air interface already carries foreground traffic"
        )

    def test_workload_already_started(self):
        runner = make_runner()
        runner.workload.frames_sent = 1
        assert reason_for(runner) == "workload already started"

    def test_modem_counters_not_fresh(self):
        runner = make_runner()
        runner.access.modem.ul_sent.add(0.0, 10)
        assert reason_for(runner) == "modem counters not fresh"

    def test_bearer_counters_not_fresh(self):
        runner = make_runner()
        runner.network.bearers.by_flow(runner.flow_id).uplink.add(0.0, 10)
        assert reason_for(runner) == "bearer counters not fresh"

    def test_rrc_not_idle(self):
        runner = make_runner()
        runner.network.enodeb.ue(str(runner.device.imsi)).rrc.setups = 1
        assert reason_for(runner) == "RRC not idle at simulate start"

    def test_monitor_not_fresh(self):
        runner = make_runner()
        counter = runner.device.ul_monitor.counter
        counter._times.append(0.0)
        counter._cums.append(10)
        assert "not fresh" in reason_for(runner)
        assert "monitor" in reason_for(runner)

    def test_unrecognized_radio_event(self):
        runner = make_runner(outage_eta=0.05)
        runner.loop.schedule_at(1.0, runner.access.radio._end_outage)
        assert reason_for(runner) == "unrecognized radio event pending on the loop"

    def test_unrecognized_handover_event(self):
        runner = make_runner(handover_interval_s=5.0)
        runner.loop.schedule_at(1.0, runner.handover._complete_handover)
        assert (
            reason_for(runner) == "unrecognized handover event pending on the loop"
        )

    def test_foreign_pending_events(self):
        runner = make_runner()
        runner.loop.schedule_at(1.0, lambda: None)
        assert reason_for(runner) == "event loop already has pending events"

    def test_unrecognized_fault_injector_event(self):
        runner = make_runner(
            faults=FaultSchedule(specs=(FaultSpec("burst-loss", magnitude=0.1),))
        )
        runner.loop.schedule_at(1.0, runner.fault_injector._reset_modem,
                                runner.access.modem, "modem")
        # A _reset_modem scheduled by anything but attach_modem (no
        # COUNTER_RESET spec backs it) still absorbs fine; a genuinely
        # foreign injector method does not.
        runner.loop.schedule_at(2.0, runner.fault_injector._record,
                                2.0, "crash", "modem", "boom")
        assert (
            reason_for(runner)
            == "unrecognized fault-injector event pending on the loop"
        )


class TestChaosEligibility:
    """The chaos lanes batched in PRs 6 and 9 must build general-mode lanes."""

    def assert_general(self, runner, n_absorbed):
        lane, reason = build_scenario_lane(runner)
        assert reason is None
        assert lane.general is True
        assert len(lane.absorbed) == n_absorbed

    def test_plain_session_takes_fold_lane(self):
        lane, reason = build_scenario_lane(make_runner())
        assert reason is None
        assert lane.general is False
        assert lane.absorbed == ()

    def test_outage_session(self):
        # Absorbs the pending _begin_outage and _sample_rss chain heads.
        self.assert_general(make_runner(outage_eta=0.05), n_absorbed=2)

    def test_quota_session(self):
        self.assert_general(make_runner(quota_bytes=50_000), n_absorbed=0)

    def test_handover_session(self):
        # Absorbs the pending _begin_handover chain head.
        self.assert_general(make_runner(handover_interval_s=5.0), n_absorbed=1)

    def test_downlink_chaos_session(self):
        runner = ScenarioRunner(
            VRIDGE_DL.with_(
                outage_eta=0.05,
                quota_bytes=50_000,
                handover_interval_s=5.0,
                **SHORT,
            )
        )
        self.assert_general(runner, n_absorbed=3)

    def test_path_fault_session(self):
        runner = make_runner(
            faults=FaultSchedule(specs=(FaultSpec("burst-loss", magnitude=0.1),))
        )
        self.assert_general(runner, n_absorbed=0)

    def test_counter_reset_session(self):
        # The armed _reset_modem event is absorbed like outage/handover
        # chain heads; a reset-only schedule touches no path point, so
        # ``absorbed`` alone forces general mode.
        runner = make_runner(
            faults=FaultSchedule(
                specs=(FaultSpec("counter-reset", target="modem", start=2.0),)
            )
        )
        self.assert_general(runner, n_absorbed=1)

    def test_clock_only_faults_keep_fold_lane(self):
        # Skew/drift apply in the shared collect() phase; the lane never
        # sees them, so a clock-only schedule stays on the fold loops.
        runner = make_runner(
            faults=FaultSchedule(
                specs=(
                    FaultSpec("clock-drift", target="edge-clock", magnitude=400e-6),
                    FaultSpec("clock-skew", target="operator-clock", magnitude=0.05),
                )
            )
        )
        lane, reason = build_scenario_lane(runner)
        assert reason is None
        assert lane.general is False

    def test_unmatched_path_faults_keep_fold_lane(self):
        # A path-kind spec whose glob matches neither lane point draws no
        # fault RNG in the reference either — the fold proof still holds.
        runner = make_runner(
            faults=FaultSchedule(
                specs=(FaultSpec("burst-loss", target="no-such-point", magnitude=0.5),)
            )
        )
        lane, reason = build_scenario_lane(runner)
        assert reason is None
        assert lane.general is False
