"""Batched-kernel parity: bit-exact equivalence with the reference engine.

The batched kernel's whole contract is that nothing downstream can tell
it ran: same usage records, same negotiation outcomes, same metrics
snapshot, and — the strongest form — the same raw counter point series,
RNG-dependent internals and latency lists.  These tests pin that
contract over a config matrix that exercises every hot path the kernel
mirrors: all four shipped workloads, congestion (background demand
splits), SLA middlebox drops, sparse traffic that cycles the RRC
state machine through release/re-setup, and the chaos lanes the
general executor took over from the reference fallback — outage
windows (with RSS walks and RLF detach), PCRF quota throttling,
X2/non-X2 handover, and fault schedules (burst loss, reorder,
duplication, blackouts, counter resets, clock drift) replayed at the
lane's injection points.  For fault rows the bar includes
``FaultTrace`` equality and the end-state of every named RNG stream —
one extra or missing "faults" draw diverges the stream state even when
the visible outputs happen to agree.
"""

from dataclasses import replace

import pytest

from repro.experiments.fleet import FleetConfig, FleetShard, UeSpec, build_shards
from repro.experiments.fleet_runner import FleetShardRunner
from repro.experiments.runner import ScenarioRunner
from repro.experiments.scenarios import (
    ALL_APPS,
    GAMING_DL,
    VRIDGE_DL,
    WEBCAM_RTSP_UL,
    WEBCAM_UDP_UL,
)
from repro.kernel import KERNELS, resolve_kernel
from repro.netsim.faults import FAULT_PROFILES, FaultSchedule, FaultSpec

SHORT = dict(n_cycles=2, cycle_duration_s=10.0)

BURST_LOSS = FaultSchedule(specs=(FaultSpec("burst-loss", magnitude=0.1),))


def too_fast(config):
    """Push the workload past MAX_BATCHED_FPS — the one config-expressible
    shape the kernel still refuses, used wherever a test needs a
    guaranteed fallback (fault injection no longer is one)."""
    return config.with_(workload=replace(config.workload, fps=500.0))


MATRIX = [
    pytest.param(app.with_(**SHORT), id=app.name) for app in ALL_APPS
] + [
    pytest.param(
        VRIDGE_DL.with_(background_mbps=80.0, **SHORT), id="vridge-congested"
    ),
    pytest.param(
        WEBCAM_UDP_UL.with_(background_mbps=80.0, **SHORT), id="webcam-congested"
    ),
    pytest.param(GAMING_DL.with_(sla_budget_s=0.0001, **SHORT), id="gaming-sla-drops"),
    pytest.param(
        WEBCAM_RTSP_UL.with_(
            workload=replace(WEBCAM_RTSP_UL.workload, fps=0.05),
            n_cycles=2,
            cycle_duration_s=60.0,
        ),
        id="sparse-ul-rrc-cycling",
    ),
    # Chaos lanes: each was a fallback reason before the general executor.
    pytest.param(
        WEBCAM_RTSP_UL.with_(outage_eta=0.12, **SHORT), id="ul-outage-rss-rlf"
    ),
    pytest.param(VRIDGE_DL.with_(outage_eta=0.08, **SHORT), id="dl-outage-buffering"),
    pytest.param(WEBCAM_UDP_UL.with_(quota_bytes=60_000, **SHORT), id="ul-quota-throttle"),
    pytest.param(GAMING_DL.with_(quota_bytes=120_000, **SHORT), id="dl-quota-throttle"),
    pytest.param(GAMING_DL.with_(handover_interval_s=4.0, **SHORT), id="dl-handover"),
    pytest.param(
        VRIDGE_DL.with_(handover_interval_s=4.0, handover_x2=True, **SHORT),
        id="dl-handover-x2",
    ),
    pytest.param(
        WEBCAM_RTSP_UL.with_(
            outage_eta=0.1,
            quota_bytes=100_000,
            handover_interval_s=6.0,
            handover_x2=True,
            **SHORT,
        ),
        id="chaos-kitchen-sink",
    ),
    # Fault-schedule lanes: every canned profile, both directions where
    # the profile is direction-sensitive.  Durations are chosen so each
    # row actually crosses its profile's windows (bursty DL fade at
    # t=7, flaky-link UL blackout at t=11 / DL at t=31, chaos blackout
    # at t=50 and counter reset at t=95).
    pytest.param(
        WEBCAM_UDP_UL.with_(faults=FAULT_PROFILES["bursty"], **SHORT),
        id="ul-bursty-profile",
    ),
    pytest.param(
        VRIDGE_DL.with_(faults=FAULT_PROFILES["bursty"], **SHORT),
        id="dl-bursty-profile",
    ),
    pytest.param(
        WEBCAM_RTSP_UL.with_(
            faults=FAULT_PROFILES["flaky-link"], n_cycles=2, cycle_duration_s=20.0
        ),
        id="ul-flaky-link-profile",
    ),
    pytest.param(
        GAMING_DL.with_(
            faults=FAULT_PROFILES["flaky-link"], n_cycles=2, cycle_duration_s=20.0
        ),
        id="dl-flaky-link-profile",
    ),
    pytest.param(
        WEBCAM_UDP_UL.with_(faults=FAULT_PROFILES["clock-drift"], **SHORT),
        id="ul-clock-drift-profile",
    ),
    pytest.param(
        VRIDGE_DL.with_(faults=FAULT_PROFILES["clock-drift"], **SHORT),
        id="dl-clock-drift-profile",
    ),
    pytest.param(
        WEBCAM_UDP_UL.with_(
            faults=FAULT_PROFILES["chaos"], n_cycles=2, cycle_duration_s=60.0
        ),
        id="ul-chaos-profile",
    ),
    pytest.param(
        VRIDGE_DL.with_(
            faults=FAULT_PROFILES["chaos"], n_cycles=2, cycle_duration_s=60.0
        ),
        id="dl-chaos-profile",
    ),
    pytest.param(
        GAMING_DL.with_(
            faults=FAULT_PROFILES["chaos"],
            outage_eta=0.08,
            quota_bytes=200_000,
            handover_interval_s=25.0,
            handover_x2=True,
            n_cycles=2,
            cycle_duration_s=60.0,
        ),
        id="faults-kitchen-sink",
    ),
]


def counter_points(counter):
    return (list(counter._times), list(counter._cums), counter._total)


def flow(stats):
    return (stats.packets, stats.bytes)


@pytest.mark.parametrize("config", MATRIX)
def test_scenario_bit_exact(config):
    ref = ScenarioRunner(config, kernel="reference")
    bat = ScenarioRunner(config, kernel="batched")
    ref_result = ref.run()
    bat_result = bat.run()
    assert bat.kernel_used == "batched"
    assert ref.kernel_used == "reference"

    # Everything the charging study reads.
    assert ref_result.usages == bat_result.usages
    assert ref_result.outcomes == bat_result.outcomes
    assert ref_result.measured_bitrate_bps == bat_result.measured_bitrate_bps
    assert ref_result.metrics == bat_result.metrics

    # Fault replay: same events, same order, same timestamps/details —
    # and the same number of "faults"-stream draws, pinned by comparing
    # the end-state of every named RNG stream.
    assert ref_result.fault_trace == bat_result.fault_trace
    assert set(ref.rng._streams) == set(bat.rng._streams)
    for name, stream in ref.rng._streams.items():
        assert stream.getstate() == bat.rng._streams[name].getstate(), name

    # Raw point series: any timestamp or cumulative drift shows up here
    # even when cycle-boundary queries happen to agree.
    for get in (
        lambda r: r.device.ul_monitor.counter,
        lambda r: r.device.dl_monitor.counter,
        lambda r: r.server.ul_monitor.counter,
        lambda r: r.server.dl_monitor.counter,
        lambda r: r.access.modem.ul_sent,
        lambda r: r.access.modem.dl_received,
        lambda r: r.counter_monitor._dl_reports,
        lambda r: r.counter_monitor._ul_reports,
        lambda r: r.network.bearers.by_flow(r.flow_id).uplink,
        lambda r: r.network.bearers.by_flow(r.flow_id).downlink,
    ):
        assert counter_points(get(ref)) == counter_points(get(bat))

    # RNG-coupled internals: one extra or missing draw diverges these.
    assert ref.access.radio._current_rss == bat.access.radio._current_rss
    assert ref.access.radio.rss_history == bat.access.radio.rss_history
    assert ref.access.radio.connected == bat.access.radio.connected
    assert ref.server.stats.latencies == bat.server.stats.latencies

    ref_ue = ref.network.enodeb.ue(str(ref.device.imsi))
    bat_ue = bat.network.enodeb.ue(str(bat.device.imsi))
    assert ref_ue.rrc.state is bat_ue.rrc.state
    assert ref_ue.rrc.setups == bat_ue.rrc.setups
    assert ref_ue.rrc.releases == bat_ue.rrc.releases
    assert ref_ue.rrc.counter_checks_sent == bat_ue.rrc.counter_checks_sent

    for pick in ("offered", "dropped", "transmitted"):
        assert flow(getattr(ref.network.enodeb.uplink_air, pick)) == flow(
            getattr(bat.network.enodeb.uplink_air, pick)
        )
        assert flow(getattr(ref.network.enodeb.downlink_air, pick)) == flow(
            getattr(bat.network.enodeb.downlink_air, pick)
        )
    assert flow(ref.network.middlebox.passed) == flow(bat.network.middlebox.passed)
    assert flow(ref.network.middlebox.dropped) == flow(bat.network.middlebox.dropped)


def metrics_key(snapshot):
    """Snapshot as a dict, minus ``kernel.fallback{...}`` counters.

    Auto-mode runners record a fallback counter per reference-engine
    session; an explicit ``kernel="reference"`` run records none.  The
    counter is bookkeeping about *which engine ran*, not simulation
    output, so mixed-kernel comparisons ignore it.
    """
    data = snapshot.to_dict()
    data["counters"] = {
        k: v
        for k, v in data["counters"].items()
        if not k.startswith("kernel.fallback")
    }
    return data


def shard_result_key(result):
    return (
        result.shard_index,
        [
            (
                ue.ue_index,
                ue.archetype,
                ue.flow_id,
                ue.cycles,
                ue.offered_bitrate_bps,
                sorted(ue.mean_gap_mb_hr.items()),
                sorted(ue.mean_epsilon.items()),
                sorted(ue.mean_rounds.items()),
                sorted(ue.converged_cycles.items()),
            )
            for ue in result.ues
        ],
        metrics_key(result.metrics),
    )


class TestFleetParity:
    def test_shard_bit_exact(self):
        fleet = FleetConfig(ues=6, shard_size=6, seed=3, n_cycles=2, cycle_duration_s=10.0)
        (shard,) = build_shards(fleet)
        ref = FleetShardRunner(shard, kernel="reference").run()
        runner = FleetShardRunner(shard, kernel="batched")
        bat = runner.run()
        assert set(runner.kernel_used.values()) == {"batched"}
        assert shard_result_key(ref) == shard_result_key(bat)

    def test_chaos_shard_bit_exact(self):
        """Fleet-level chaos overrides stay batched and bit-exact."""
        fleet = FleetConfig(
            ues=4,
            shard_size=4,
            seed=3,
            n_cycles=2,
            cycle_duration_s=10.0,
            outage_eta=0.1,
            handover_interval_s=5.0,
            handover_x2=True,
            quota_bytes=150_000,
        )
        (shard,) = build_shards(fleet)
        ref = FleetShardRunner(shard, kernel="reference").run()
        runner = FleetShardRunner(shard, kernel="batched")
        bat = runner.run()
        assert set(runner.kernel_used.values()) == {"batched"}
        assert shard_result_key(ref) == shard_result_key(bat)

    def test_chaos_profile_shard_bit_exact_no_fault_fallbacks(self):
        """The standard mix under the canned ``chaos`` profile stays
        entirely on the batched kernel — the acceptance bar for this PR:
        ``kernel.fallback{reason="fault injection active"}`` is gone."""
        fleet = FleetConfig(
            ues=6,
            shard_size=6,
            seed=3,
            n_cycles=2,
            cycle_duration_s=60.0,
            fault_profile="chaos",
        )
        (shard,) = build_shards(fleet)
        ref = FleetShardRunner(shard, kernel="reference").run()
        runner = FleetShardRunner(shard, kernel="auto")
        auto = runner.run()
        assert set(runner.kernel_used.values()) == {"batched"}
        assert not any(
            k.startswith("kernel.fallback")
            for k in auto.metrics.to_dict()["counters"]
        )
        assert shard_result_key(ref) == shard_result_key(auto)

    def test_mixed_shard_auto_falls_back_per_session(self):
        """Ineligible UEs run on the reference engine in the same shard."""
        fleet = FleetConfig(ues=4, shard_size=4, seed=3, n_cycles=2, cycle_duration_s=10.0)
        (shard,) = build_shards(fleet)
        flaky = shard.ues[1]
        shard = FleetShard(
            index=shard.index,
            seed=shard.seed,
            ues=tuple(
                UeSpec(
                    index=ue.index,
                    archetype=ue.archetype,
                    seed=ue.seed,
                    config=too_fast(ue.config),
                )
                if ue is flaky
                else ue
                for ue in shard.ues
            ),
        )
        ref = FleetShardRunner(shard, kernel="reference").run()
        runner = FleetShardRunner(shard, kernel="auto")
        auto = runner.run()
        assert runner.kernel_used[flaky.index] == "reference"
        assert set(runner.kernel_used.values()) == {"batched", "reference"}
        assert "kernel bound" in runner.kernel_fallback_reasons[flaky.index]
        assert shard_result_key(ref) == shard_result_key(auto)

    def test_strict_batched_raises_on_ineligible_session(self):
        fleet = FleetConfig(ues=2, shard_size=2, seed=3, n_cycles=2, cycle_duration_s=10.0)
        (shard,) = build_shards(fleet)
        shard = FleetShard(
            index=shard.index,
            seed=shard.seed,
            ues=(
                shard.ues[0],
                UeSpec(
                    index=shard.ues[1].index,
                    archetype=shard.ues[1].archetype,
                    seed=shard.ues[1].seed,
                    config=too_fast(shard.ues[1].config),
                ),
            ),
        )
        with pytest.raises(RuntimeError, match="batched kernel unavailable"):
            FleetShardRunner(shard, kernel="batched").simulate()


class TestSelection:
    def test_resolve_order_and_validation(self, monkeypatch):
        monkeypatch.delenv("REPRO_SIM_KERNEL", raising=False)
        assert resolve_kernel() == "auto"
        monkeypatch.setenv("REPRO_SIM_KERNEL", "reference")
        assert resolve_kernel() == "reference"
        assert resolve_kernel("batched") == "batched"  # explicit beats env
        with pytest.raises(ValueError, match="unknown simulation kernel"):
            resolve_kernel("turbo")
        assert set(KERNELS) == {"auto", "batched", "reference"}

    def test_auto_fallback_records_reason(self):
        config = too_fast(WEBCAM_UDP_UL.with_(**SHORT))
        runner = ScenarioRunner(config, kernel="auto")
        runner.simulate()
        assert runner.kernel_used == "reference"
        assert "kernel bound" in runner.kernel_fallback_reason
        # Satellite: the fallback reason is an observable counter too.
        counters = runner.metrics.snapshot().counters
        key = f"kernel.fallback{{reason={runner.kernel_fallback_reason}}}"
        assert counters[key] == 1

    @pytest.mark.parametrize(
        "chaos",
        [
            pytest.param(dict(outage_eta=0.05), id="outage"),
            pytest.param(dict(quota_bytes=50_000), id="quota"),
            pytest.param(dict(handover_interval_s=5.0), id="handover"),
            pytest.param(
                dict(handover_interval_s=5.0, handover_x2=True), id="handover-x2"
            ),
            pytest.param(dict(faults=BURST_LOSS), id="burst-loss"),
            pytest.param(
                dict(faults=FAULT_PROFILES["bursty"]), id="bursty-profile"
            ),
            pytest.param(
                dict(faults=FAULT_PROFILES["flaky-link"]), id="flaky-link-profile"
            ),
            pytest.param(
                dict(faults=FAULT_PROFILES["clock-drift"]), id="clock-drift-profile"
            ),
            pytest.param(dict(faults=FAULT_PROFILES["chaos"]), id="chaos-profile"),
        ],
    )
    def test_chaos_lanes_no_longer_fall_back(self, chaos):
        runner = ScenarioRunner(
            WEBCAM_UDP_UL.with_(**chaos, **SHORT), kernel="auto"
        )
        runner.simulate()
        assert runner.kernel_used == "batched"
        assert runner.kernel_fallback_reason is None
        assert not any(
            k.startswith("kernel.fallback")
            for k in runner.metrics.snapshot().counters
        )

    def test_strict_batched_accepts_faults(self):
        config = WEBCAM_UDP_UL.with_(faults=FAULT_PROFILES["chaos"], **SHORT)
        runner = ScenarioRunner(config, kernel="batched")
        runner.simulate()
        assert runner.kernel_used == "batched"

    def test_env_var_reaches_simulation(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_KERNEL", "batched")
        runner = ScenarioRunner(WEBCAM_UDP_UL.with_(**SHORT))
        runner.simulate()
        assert runner.kernel_used == "batched"
