"""TCP-like transport: ARQ, retransmission, spurious counting."""

import pytest

from repro.netsim.events import EventLoop
from repro.netsim.transport import TcpLikeReceiver, TcpLikeSender


class Harness:
    """Sender and receiver joined by a controllable one-way channel."""

    def __init__(self, loop, loss_seqs=(), delay=0.01, ack_delay=0.01, **sender_kw):
        self.loop = loop
        self.loss_seqs = set(loss_seqs)  # first transmission of these drops
        self.delay = delay
        self.ack_delay = ack_delay
        self.sender = TcpLikeSender(loop, self._transmit, **sender_kw)
        self.receiver = TcpLikeReceiver(loop, self._send_ack)
        self._dropped_once: set[int] = set()

    def _transmit(self, size, seq):
        if seq in self.loss_seqs and seq not in self._dropped_once:
            self._dropped_once.add(seq)
            return  # lost in the network
        sent_at = self.sender.first_sent_at(seq)
        if sent_at is None:
            sent_at = self.loop.now()
        self.loop.schedule(self.delay, self.receiver.on_segment, size, seq, sent_at)

    def _send_ack(self, seq):
        self.loop.schedule(self.ack_delay, self.sender.on_ack, seq)


class TestReliability:
    def test_lossless_delivery_no_retransmission(self):
        loop = EventLoop()
        h = Harness(loop)
        h.sender.offer(5000)
        loop.run()
        assert h.receiver.delivered_bytes == 5000
        assert h.sender.retransmitted_bytes == 0
        assert h.sender.overhead_ratio == 1.0

    def test_segmentation_at_mss(self):
        loop = EventLoop()
        h = Harness(loop, mss=1000)
        seqs = h.sender.offer(2500)
        assert len(seqs) == 3  # 1000 + 1000 + 500
        loop.run()
        assert h.receiver.delivered_bytes == 2500

    def test_lost_segment_recovered_by_retransmission(self):
        loop = EventLoop()
        h = Harness(loop, loss_seqs=[0], mss=1000, rto_s=0.1)
        h.sender.offer(1000)
        loop.run()
        assert h.receiver.delivered_bytes == 1000
        assert h.sender.retransmitted_bytes == 1000
        assert h.sender.unacked_segments == 0

    def test_recovery_costs_latency(self):
        """Theorem 1's trade-off in miniature: the recovered segment
        arrives at least one RTO later than a clean one."""
        loop = EventLoop()
        h = Harness(loop, loss_seqs=[0], mss=1000, rto_s=0.1)
        h.sender.offer(2000)  # seq 0 lost once, seq 1 clean
        loop.run()
        latencies = sorted(h.receiver.delivery_latencies)
        assert latencies[0] == pytest.approx(0.01, abs=0.002)  # clean
        assert latencies[1] >= 0.1  # waited out the RTO

    def test_abandon_after_max_retries(self):
        loop = EventLoop()
        h = Harness(loop, mss=1000, rto_s=0.05, max_retries=3)
        h.loss_seqs = {0}
        h._dropped_once = set()
        # Drop *every* transmission of seq 0.
        h._transmit_orig = h._transmit

        def always_lose(size, seq):
            if seq == 0:
                return
            h._transmit_orig(size, seq)

        h.sender.transmit = always_lose
        h.sender.offer(1000)
        loop.run()
        assert h.sender.abandoned_segments == 1
        assert h.receiver.delivered_bytes == 0


class TestSpuriousRetransmission:
    def test_slow_ack_triggers_spurious_retransmission(self):
        """The [12] over-charging vector: the data arrived, the ACK was
        slow, the RTO fired anyway — bytes charged twice."""
        loop = EventLoop()
        h = Harness(loop, mss=1000, rto_s=0.05, ack_delay=0.2)
        h.sender.offer(1000)
        loop.run()
        assert h.receiver.delivered_bytes == 1000
        assert h.sender.spurious_retransmissions >= 1
        assert h.receiver.duplicate_segments >= 1
        assert h.sender.overhead_ratio > 1.0

    def test_duplicates_not_delivered_twice(self):
        loop = EventLoop()
        h = Harness(loop, mss=1000, rto_s=0.05, ack_delay=0.2)
        h.sender.offer(3000)
        loop.run()
        assert h.receiver.delivered_bytes == 3000  # exactly once each

    def test_duplicate_ack_ignored(self):
        loop = EventLoop()
        h = Harness(loop, mss=1000)
        h.sender.offer(1000)
        loop.run()
        h.sender.on_ack(0)  # replayed ACK for a finished segment
        assert h.sender.unacked_segments == 0


class TestValidation:
    def test_rejects_bad_mss(self):
        with pytest.raises(ValueError):
            TcpLikeSender(EventLoop(), lambda s, q: None, mss=0)

    def test_rejects_bad_rto(self):
        with pytest.raises(ValueError):
            TcpLikeSender(EventLoop(), lambda s, q: None, rto_s=0)

    def test_rejects_empty_offer(self):
        sender = TcpLikeSender(EventLoop(), lambda s, q: None)
        with pytest.raises(ValueError):
            sender.offer(0)
