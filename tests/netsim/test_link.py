"""Link serialization, latency and loss behaviour."""

import pytest

from repro.netsim.events import EventLoop
from repro.netsim.link import Link
from repro.netsim.packet import Direction, Packet


def packet(size=1000):
    return Packet(size=size, flow_id="f", direction=Direction.UPLINK)


class TestDelivery:
    def test_pure_delay_link(self):
        loop = EventLoop()
        arrivals = []
        link = Link(loop, lambda p: arrivals.append(loop.now()), latency=0.01)
        link.send(packet())
        loop.run()
        assert arrivals == [0.01]

    def test_serialization_time_at_rate(self):
        loop = EventLoop()
        arrivals = []
        # 1000 bytes at 1 Mbps = 8 ms serialization.
        link = Link(loop, lambda p: arrivals.append(loop.now()), rate_bps=1e6)
        link.send(packet(1000))
        loop.run()
        assert arrivals == [pytest.approx(0.008)]

    def test_back_to_back_packets_queue_on_rate(self):
        loop = EventLoop()
        arrivals = []
        link = Link(loop, lambda p: arrivals.append(loop.now()), rate_bps=1e6)
        link.send(packet(1000))
        link.send(packet(1000))
        loop.run()
        assert arrivals == [pytest.approx(0.008), pytest.approx(0.016)]

    def test_preserves_order(self):
        loop = EventLoop()
        seen = []
        link = Link(loop, lambda p: seen.append(p.seq), rate_bps=1e6, latency=0.005)
        for i in range(5):
            p = packet()
            p.seq = i
            link.send(p)
        loop.run()
        assert seen == [0, 1, 2, 3, 4]

    def test_counters_track_sent_and_delivered(self):
        loop = EventLoop()
        link = Link(loop, lambda p: None, latency=0.001)
        for _ in range(3):
            link.send(packet(500))
        loop.run()
        assert link.sent.packets == 3
        assert link.delivered.bytes == 1500


class TestLoss:
    def test_loss_fn_drops_and_labels(self):
        loop = EventLoop()
        arrivals = []
        link = Link(
            loop, arrivals.append, loss_fn=lambda p: True, drop_layer="ip-congestion"
        )
        p = packet()
        link.send(p)
        loop.run()
        assert arrivals == []
        assert p.dropped_at == "ip-congestion"
        assert link.lost.packets == 1

    def test_selective_loss(self):
        loop = EventLoop()
        arrivals = []
        link = Link(loop, arrivals.append, loss_fn=lambda p: p.size > 500)
        link.send(packet(100))
        link.send(packet(1000))
        loop.run()
        assert len(arrivals) == 1
        assert arrivals[0].size == 100


class TestValidation:
    def test_rejects_zero_rate(self):
        with pytest.raises(ValueError):
            Link(EventLoop(), lambda p: None, rate_bps=0)

    def test_rejects_negative_latency(self):
        with pytest.raises(ValueError):
            Link(EventLoop(), lambda p: None, latency=-0.001)
