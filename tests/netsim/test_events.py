"""Event loop ordering, cancellation and time semantics."""

import pytest

from repro.netsim.events import EventLoop


class TestScheduling:
    def test_dispatches_in_time_order(self):
        loop = EventLoop()
        order = []
        loop.schedule_at(2.0, order.append, "b")
        loop.schedule_at(1.0, order.append, "a")
        loop.schedule_at(3.0, order.append, "c")
        loop.run()
        assert order == ["a", "b", "c"]

    def test_ties_break_by_insertion_order(self):
        loop = EventLoop()
        order = []
        for tag in ("first", "second", "third"):
            loop.schedule_at(1.0, order.append, tag)
        loop.run()
        assert order == ["first", "second", "third"]

    def test_relative_delay(self):
        loop = EventLoop()
        seen = []
        loop.schedule(0.5, lambda: seen.append(loop.now()))
        loop.run()
        assert seen == [0.5]

    def test_cannot_schedule_in_past(self):
        loop = EventLoop()
        loop.schedule_at(1.0, lambda: None)
        loop.run()
        with pytest.raises(ValueError):
            loop.schedule_at(0.5, lambda: None)

    def test_negative_delay_rejected(self):
        loop = EventLoop()
        with pytest.raises(ValueError):
            loop.schedule(-0.1, lambda: None)

    def test_events_scheduled_during_dispatch_run(self):
        loop = EventLoop()
        seen = []

        def first():
            loop.schedule(1.0, lambda: seen.append(loop.now()))

        loop.schedule_at(1.0, first)
        loop.run()
        assert seen == [2.0]


class TestRunUntil:
    def test_stops_at_horizon(self):
        loop = EventLoop()
        seen = []
        loop.schedule_at(1.0, seen.append, 1)
        loop.schedule_at(5.0, seen.append, 5)
        dispatched = loop.run_until(2.0)
        assert seen == [1] and dispatched == 1
        assert loop.now() == 2.0
        assert loop.pending() == 1

    def test_clock_lands_on_horizon_with_no_events(self):
        loop = EventLoop()
        loop.run_until(7.0)
        assert loop.now() == 7.0

    def test_event_exactly_at_horizon_runs(self):
        loop = EventLoop()
        seen = []
        loop.schedule_at(2.0, seen.append, "edge")
        loop.run_until(2.0)
        assert seen == ["edge"]


class TestCancellation:
    def test_cancelled_event_skipped(self):
        loop = EventLoop()
        seen = []
        event = loop.schedule_at(1.0, seen.append, "x")
        event.cancel()
        dispatched = loop.run()
        assert seen == [] and dispatched == 0

    def test_pending_excludes_cancelled(self):
        loop = EventLoop()
        keep = loop.schedule_at(1.0, lambda: None)
        drop = loop.schedule_at(2.0, lambda: None)
        drop.cancel()
        assert loop.pending() == 1
        assert not keep.cancelled

    def test_dispatched_counter_accumulates(self):
        loop = EventLoop()
        for i in range(5):
            loop.schedule_at(float(i), lambda: None)
        loop.run_until(2.0)
        loop.run()
        assert loop.dispatched == 5
