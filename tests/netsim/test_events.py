"""Event loop ordering, cancellation and time semantics."""

import pytest

from repro.netsim.events import EventLoop


class TestScheduling:
    def test_dispatches_in_time_order(self):
        loop = EventLoop()
        order = []
        loop.schedule_at(2.0, order.append, "b")
        loop.schedule_at(1.0, order.append, "a")
        loop.schedule_at(3.0, order.append, "c")
        loop.run()
        assert order == ["a", "b", "c"]

    def test_ties_break_by_insertion_order(self):
        loop = EventLoop()
        order = []
        for tag in ("first", "second", "third"):
            loop.schedule_at(1.0, order.append, tag)
        loop.run()
        assert order == ["first", "second", "third"]

    def test_relative_delay(self):
        loop = EventLoop()
        seen = []
        loop.schedule(0.5, lambda: seen.append(loop.now()))
        loop.run()
        assert seen == [0.5]

    def test_cannot_schedule_in_past(self):
        loop = EventLoop()
        loop.schedule_at(1.0, lambda: None)
        loop.run()
        with pytest.raises(ValueError):
            loop.schedule_at(0.5, lambda: None)

    def test_negative_delay_rejected(self):
        loop = EventLoop()
        with pytest.raises(ValueError):
            loop.schedule(-0.1, lambda: None)

    def test_events_scheduled_during_dispatch_run(self):
        loop = EventLoop()
        seen = []

        def first():
            loop.schedule(1.0, lambda: seen.append(loop.now()))

        loop.schedule_at(1.0, first)
        loop.run()
        assert seen == [2.0]


class TestSameTimestampDeterminism:
    """FIFO tie-break by a monotonic sequence counter, always.

    Many simulator components schedule at identical timestamps (frame
    fans-out, counter checks on cycle boundaries); charging results are
    only reproducible if same-time dispatch order is schedule order — on
    every path, including after heap compaction and for events armed
    during dispatch of the same instant.
    """

    def test_sequence_numbers_strictly_increase(self):
        loop = EventLoop()
        events = [loop.schedule_at(1.0, lambda: None) for _ in range(50)]
        seqs = [event.seq for event in events]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)

    def test_fifo_preserved_across_compaction(self):
        """Mass cancellation (heap rebuild) must not reorder ties."""
        loop = EventLoop()
        order = []
        cancelled = [loop.schedule_at(5.0, lambda: None) for _ in range(500)]
        for tag in range(20):
            loop.schedule_at(1.0, order.append, tag)
        for event in cancelled:
            event.cancel()  # triggers lazy compaction
        for tag in range(20, 40):
            loop.schedule_at(1.0, order.append, tag)
        loop.run()
        assert order == list(range(40))

    def test_events_armed_during_dispatch_run_after_queued_ties(self):
        """A same-time event scheduled *during* dispatch gets a later seq,
        so it runs after everything already queued for that instant."""
        loop = EventLoop()
        order = []

        def first():
            order.append("first")
            loop.schedule_at(1.0, order.append, "armed-during-dispatch")

        loop.schedule_at(1.0, first)
        loop.schedule_at(1.0, order.append, "second")
        loop.run()
        assert order == ["first", "second", "armed-during-dispatch"]

    def test_interleaved_times_keep_per_instant_fifo(self):
        loop = EventLoop()
        order = []
        for i in range(10):
            loop.schedule_at(2.0, order.append, ("late", i))
            loop.schedule_at(1.0, order.append, ("early", i))
        loop.run()
        assert order == [("early", i) for i in range(10)] + [
            ("late", i) for i in range(10)
        ]


class TestRunUntil:
    def test_stops_at_horizon(self):
        loop = EventLoop()
        seen = []
        loop.schedule_at(1.0, seen.append, 1)
        loop.schedule_at(5.0, seen.append, 5)
        dispatched = loop.run_until(2.0)
        assert seen == [1] and dispatched == 1
        assert loop.now() == 2.0
        assert loop.pending() == 1

    def test_clock_lands_on_horizon_with_no_events(self):
        loop = EventLoop()
        loop.run_until(7.0)
        assert loop.now() == 7.0

    def test_event_exactly_at_horizon_runs(self):
        loop = EventLoop()
        seen = []
        loop.schedule_at(2.0, seen.append, "edge")
        loop.run_until(2.0)
        assert seen == ["edge"]


class TestCancellation:
    def test_cancelled_event_skipped(self):
        loop = EventLoop()
        seen = []
        event = loop.schedule_at(1.0, seen.append, "x")
        event.cancel()
        dispatched = loop.run()
        assert seen == [] and dispatched == 0

    def test_pending_excludes_cancelled(self):
        loop = EventLoop()
        keep = loop.schedule_at(1.0, lambda: None)
        drop = loop.schedule_at(2.0, lambda: None)
        drop.cancel()
        assert loop.pending() == 1
        assert not keep.cancelled

    def test_dispatched_counter_accumulates(self):
        loop = EventLoop()
        for i in range(5):
            loop.schedule_at(float(i), lambda: None)
        loop.run_until(2.0)
        loop.run()
        assert loop.dispatched == 5

    def test_double_cancel_counted_once(self):
        loop = EventLoop()
        keep = loop.schedule_at(1.0, lambda: None)
        drop = loop.schedule_at(2.0, lambda: None)
        drop.cancel()
        drop.cancel()
        assert loop.pending() == 1
        loop.run()
        assert loop.pending() == 0
        assert not keep.cancelled

    def test_cancel_after_dispatch_does_not_skew_pending(self):
        loop = EventLoop()
        fired = loop.schedule_at(1.0, lambda: None)
        loop.schedule_at(5.0, lambda: None)
        loop.run_until(2.0)
        fired.cancel()  # already ran: must not affect live accounting
        assert loop.pending() == 1


class TestLazyCompaction:
    def test_heap_stays_bounded_under_mass_cancellation(self):
        """Cancelled far-future events must be reclaimed before expiry."""
        loop = EventLoop()
        events = [loop.schedule_at(1000.0, lambda: None) for _ in range(10_000)]
        for event in events:
            event.cancel()
        assert loop.pending() == 0
        # Lazy compaction keeps the heap proportional to live events, not
        # to every timer ever armed (the threshold allows a small floor).
        assert loop.heap_size() < 200

    def test_timer_rearm_pattern_stays_flat(self):
        """The ARQ cancel-and-rearm idiom: O(live) heap, not O(armed)."""
        loop = EventLoop()
        timer = None
        for _ in range(50_000):
            if timer is not None:
                timer.cancel()
            timer = loop.schedule_at(1000.0, lambda: None)
        assert loop.pending() == 1
        assert loop.heap_size() < 200
        loop.run()
        assert loop.dispatched == 1

    def test_compaction_preserves_dispatch_order(self):
        loop = EventLoop()
        order = []
        keepers = []
        for i in range(300):
            event = loop.schedule_at(float(i), order.append, i)
            if i % 3:
                event.cancel()
            else:
                keepers.append(i)
        loop.run()
        assert order == keepers

    def test_pending_consistent_across_partial_runs(self):
        loop = EventLoop()
        for i in range(100):
            event = loop.schedule_at(float(i), lambda: None)
            if i % 2:
                event.cancel()
        assert loop.pending() == 50
        loop.run_until(49.0)
        assert loop.pending() == 25
        loop.run()
        assert loop.pending() == 0 and loop.heap_size() == 0
