"""Clock and SkewedClock behaviour."""

import pytest

from repro.netsim.clock import Clock, SkewedClock


class TestClock:
    def test_starts_at_zero_by_default(self):
        assert Clock().now() == 0.0

    def test_starts_at_given_time(self):
        assert Clock(5.5).now() == 5.5

    def test_rejects_negative_start(self):
        with pytest.raises(ValueError):
            Clock(-1.0)

    def test_advances_forward(self):
        clock = Clock()
        clock.advance_to(3.25)
        assert clock.now() == 3.25

    def test_advance_to_same_time_is_noop(self):
        clock = Clock(2.0)
        clock.advance_to(2.0)
        assert clock.now() == 2.0

    def test_never_rewinds(self):
        clock = Clock(10.0)
        with pytest.raises(ValueError):
            clock.advance_to(9.999)


class TestSkewedClock:
    def test_positive_skew_runs_ahead(self):
        base = Clock(100.0)
        skewed = SkewedClock(base, skew=2.5)
        assert skewed.now() == 102.5

    def test_negative_skew_runs_behind(self):
        base = Clock(100.0)
        assert SkewedClock(base, skew=-3.0).now() == 97.0

    def test_tracks_base_clock(self):
        base = Clock()
        skewed = SkewedClock(base, skew=1.0)
        base.advance_to(50.0)
        assert skewed.now() == 51.0
