"""Clock and SkewedClock behaviour."""

import pytest

from repro.netsim.clock import Clock, SkewedClock


class TestClock:
    def test_starts_at_zero_by_default(self):
        assert Clock().now() == 0.0

    def test_starts_at_given_time(self):
        assert Clock(5.5).now() == 5.5

    def test_rejects_negative_start(self):
        with pytest.raises(ValueError):
            Clock(-1.0)

    def test_advances_forward(self):
        clock = Clock()
        clock.advance_to(3.25)
        assert clock.now() == 3.25

    def test_advance_to_same_time_is_noop(self):
        clock = Clock(2.0)
        clock.advance_to(2.0)
        assert clock.now() == 2.0

    def test_never_rewinds(self):
        clock = Clock(10.0)
        with pytest.raises(ValueError):
            clock.advance_to(9.999)


class TestSkewedClock:
    def test_positive_skew_runs_ahead(self):
        base = Clock(100.0)
        skewed = SkewedClock(base, skew=2.5)
        assert skewed.now() == 102.5

    def test_negative_skew_runs_behind(self):
        base = Clock(100.0)
        assert SkewedClock(base, skew=-3.0).now() == 97.0

    def test_tracks_base_clock(self):
        base = Clock()
        skewed = SkewedClock(base, skew=1.0)
        base.advance_to(50.0)
        assert skewed.now() == 51.0

    def test_offset_only_semantics_unchanged_by_default(self):
        """Regression: without a rate term the clock is a pure offset."""
        base = Clock(100.0)
        skewed = SkewedClock(base, skew=0.25)
        assert skewed.skew_ppm == 0.0
        base.advance_to(10_000.0)
        assert skewed.now() == 10_000.25

    def test_drift_accumulates_with_elapsed_time(self):
        base = Clock()
        skewed = SkewedClock(base, skew_ppm=100.0)  # 100 µs/s fast
        base.advance_to(1000.0)
        assert skewed.now() == pytest.approx(1000.0 + 0.1)

    def test_drift_measured_from_construction_anchor(self):
        base = Clock(500.0)
        skewed = SkewedClock(base, skew_ppm=1000.0)
        assert skewed.now() == 500.0  # no time elapsed yet, no drift
        base.advance_to(600.0)
        assert skewed.now() == pytest.approx(600.0 + 0.1)

    def test_explicit_anchor_overrides(self):
        base = Clock(100.0)
        skewed = SkewedClock(base, skew_ppm=1000.0, anchor=0.0)
        assert skewed.now() == pytest.approx(100.1)

    def test_offset_and_drift_compose(self):
        base = Clock()
        skewed = SkewedClock(base, skew=-0.5, skew_ppm=200.0)
        base.advance_to(100.0)
        assert skewed.now() == pytest.approx(100.0 - 0.5 + 0.02)

    def test_error_at_reports_total_error(self):
        skewed = SkewedClock(Clock(), skew=0.1, skew_ppm=100.0)
        assert skewed.error_at(1000.0) == pytest.approx(0.1 + 0.1)
