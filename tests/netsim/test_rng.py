"""Named random stream determinism and independence."""

from repro.netsim.rng import StreamRegistry


class TestStreams:
    def test_same_name_returns_same_stream(self):
        reg = StreamRegistry(1)
        assert reg.stream("radio") is reg.stream("radio")

    def test_same_seed_reproduces_draws(self):
        a = StreamRegistry(42).stream("x")
        b = StreamRegistry(42).stream("x")
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_different_names_are_independent(self):
        reg = StreamRegistry(42)
        a = [reg.stream("a").random() for _ in range(5)]
        b = [reg.stream("b").random() for _ in range(5)]
        assert a != b

    def test_different_seeds_differ(self):
        a = StreamRegistry(1).stream("x").random()
        b = StreamRegistry(2).stream("x").random()
        assert a != b

    def test_draw_order_isolation(self):
        """Draining one stream must not perturb another."""
        reg1 = StreamRegistry(7)
        reg1.stream("noise").random()  # extra draw on an unrelated stream
        value1 = reg1.stream("signal").random()

        reg2 = StreamRegistry(7)
        value2 = reg2.stream("signal").random()
        assert value1 == value2


class TestFork:
    def test_fork_is_deterministic(self):
        a = StreamRegistry(1).fork("child").stream("s").random()
        b = StreamRegistry(1).fork("child").stream("s").random()
        assert a == b

    def test_fork_differs_from_parent(self):
        parent = StreamRegistry(1)
        child = parent.fork("child")
        assert parent.stream("s").random() != child.stream("s").random()

    def test_distinct_forks_differ(self):
        reg = StreamRegistry(1)
        assert (
            reg.fork("a").stream("s").random()
            != reg.fork("b").stream("s").random()
        )
