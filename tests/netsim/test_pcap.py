"""Trace record / replay round-trips."""

from repro.netsim.events import EventLoop
from repro.netsim.packet import Direction, Packet, Transport
from repro.netsim.pcap import TraceEntry, TraceRecorder, TraceReplayer, load_trace


def make_packet(size=100, flow="f", qci=9):
    return Packet(size=size, flow_id=flow, direction=Direction.UPLINK, qci=qci)


class TestRecording:
    def test_records_timestamp_and_shape(self):
        loop = EventLoop()
        recorder = TraceRecorder(loop)
        loop.schedule_at(1.5, lambda: recorder.observe(make_packet(333)))
        loop.run()
        entry = recorder.entries[0]
        assert entry.timestamp == 1.5
        assert entry.size == 333
        assert entry.direction == "UL"

    def test_json_roundtrip(self):
        entry = TraceEntry(1.25, 700, "vr", "DL", 7, "udp")
        assert TraceEntry.from_json(entry.to_json()) == entry

    def test_save_and_load(self, tmp_path):
        loop = EventLoop()
        recorder = TraceRecorder(loop)
        for i in range(3):
            loop.schedule_at(float(i), lambda i=i: recorder.observe(make_packet(100 + i)))
        loop.run()
        path = tmp_path / "trace.jsonl"
        recorder.save(path)
        loaded = load_trace(path)
        assert loaded == recorder.entries

    def test_empty_trace_saves_empty_file(self, tmp_path):
        loop = EventLoop()
        recorder = TraceRecorder(loop)
        path = tmp_path / "empty.jsonl"
        recorder.save(path)
        assert load_trace(path) == []


class TestReplay:
    def test_replays_with_original_timing(self):
        entries = [
            TraceEntry(0.5, 100, "g", "DL", 7, "udp"),
            TraceEntry(1.0, 200, "g", "DL", 7, "udp"),
        ]
        loop = EventLoop()
        arrivals = []
        replayer = TraceReplayer(loop, entries, lambda p: arrivals.append((loop.now(), p.size)))
        replayer.start()
        loop.run()
        assert arrivals == [(0.5, 100), (1.0, 200)]

    def test_replay_reconstructs_packet_fields(self):
        entries = [TraceEntry(0.0, 512, "vr", "DL", 3, "tcp")]
        loop = EventLoop()
        seen = []
        TraceReplayer(loop, entries, seen.append).start()
        loop.run()
        packet = seen[0]
        assert packet.qci == 3
        assert packet.transport is Transport.TCP
        assert packet.direction is Direction.DOWNLINK

    def test_looping_replay_repeats_trace(self):
        entries = [TraceEntry(0.2, 100, "g", "UL", 9, "udp")]
        loop = EventLoop()
        arrivals = []
        replayer = TraceReplayer(
            loop, entries, lambda p: arrivals.append(loop.now()), loop_duration=1.0
        )
        scheduled = replayer.start(until=3.0)
        loop.run()
        assert scheduled == 3
        assert arrivals == [0.2, 1.2, 2.2]

    def test_time_offset_shifts_replay(self):
        entries = [TraceEntry(0.0, 100, "g", "UL", 9, "udp")]
        loop = EventLoop()
        arrivals = []
        TraceReplayer(loop, entries, lambda p: arrivals.append(loop.now()), time_offset=5.0).start()
        loop.run()
        assert arrivals == [5.0]

    def test_empty_trace_replay_is_noop(self):
        loop = EventLoop()
        replayer = TraceReplayer(loop, [], lambda p: None)
        assert replayer.start() == 0
        assert loop.pending() == 0

    def test_out_of_order_timestamps_replay_in_time_order(self):
        # A merged capture (two observation points) can have out-of-order
        # rows; the event loop re-sorts them by timestamp on replay.
        entries = [
            TraceEntry(1.0, 200, "g", "UL", 9, "udp"),
            TraceEntry(0.5, 100, "g", "UL", 9, "udp"),
        ]
        loop = EventLoop()
        arrivals = []
        TraceReplayer(loop, entries, lambda p: arrivals.append((loop.now(), p.size))).start()
        loop.run()
        assert arrivals == [(0.5, 100), (1.0, 200)]


class TestRoundTripUnderFaults:
    def test_recorded_faulty_delivery_replays_identically(self, tmp_path):
        """Record a trace at a fault-injected observation point, save it,
        reload it, and re-inject: timing and sizes survive the loop."""
        from repro.netsim.faults import FaultInjector, FaultSchedule, FaultSpec
        from repro.netsim.link import Link
        from repro.netsim.rng import StreamRegistry

        loop = EventLoop()
        recorder = TraceRecorder(loop)
        injector = FaultInjector(
            loop,
            StreamRegistry(5),
            FaultSchedule(specs=(
                FaultSpec("burst-loss", magnitude=0.4),
                FaultSpec("duplicate", magnitude=0.2, jitter_s=0.002),
            )),
        )
        link = Link(loop, injector.pipe("downlink", recorder.observe), latency=0.001)
        for i in range(50):
            loop.schedule_at(i * 0.01, link.send, make_packet(100 + i))
        loop.run()
        assert 0 < len(recorder.entries)
        path = tmp_path / "faulty.jsonl"
        recorder.save(path)
        entries = load_trace(path)
        assert entries == recorder.entries

        # Replay into a fresh loop: arrivals match the recorded schedule.
        loop2 = EventLoop()
        arrivals = []
        TraceReplayer(loop2, entries, lambda p: arrivals.append((loop2.now(), p.size))).start()
        loop2.run()
        assert arrivals == [(e.timestamp, e.size) for e in entries]
