"""The deterministic fault-injection subsystem."""

import random

import pytest

from repro.netsim.events import EventLoop
from repro.netsim.faults import (
    FAULT_KINDS,
    FAULT_PROFILES,
    FaultEvent,
    FaultInjector,
    FaultSchedule,
    FaultSpec,
    FaultTrace,
    load_fault_trace,
)
from repro.netsim.link import Link
from repro.netsim.packet import Direction, Packet
from repro.netsim.rng import StreamRegistry
from repro.netsim.transport import TcpLikeReceiver, TcpLikeSender


def packet(size=1000, direction=Direction.DOWNLINK):
    return Packet(size=size, flow_id="f", direction=direction)


def injector(loop, specs, seed=7):
    return FaultInjector(loop, StreamRegistry(seed), FaultSchedule(specs=tuple(specs)))


class TestFaultSpec:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            FaultSpec("gremlins")

    def test_rejects_negative_window(self):
        with pytest.raises(ValueError):
            FaultSpec("blackout", start=-1.0)
        with pytest.raises(ValueError):
            FaultSpec("blackout", duration=-0.5)

    def test_probability_kinds_validate_magnitude(self):
        with pytest.raises(ValueError):
            FaultSpec("burst-loss", magnitude=1.5)

    def test_window_membership(self):
        spec = FaultSpec("blackout", start=5.0, duration=2.0)
        assert not spec.active(4.999)
        assert spec.active(5.0)
        assert spec.active(6.999)
        assert not spec.active(7.0)

    def test_open_ended_window(self):
        spec = FaultSpec("burst-loss", start=3.0, duration=None, magnitude=0.5)
        assert spec.active(1e9)

    def test_target_glob(self):
        spec = FaultSpec("crash", target="poc-*")
        assert spec.matches("poc-edge")
        assert not spec.matches("uplink")

    def test_dict_roundtrip(self):
        spec = FaultSpec("reorder", start=1.0, duration=4.0, target="downlink",
                         magnitude=0.25, jitter_s=0.01)
        assert FaultSpec.from_dict(spec.to_dict()) == spec


class TestFaultSchedule:
    def test_compose_concatenates(self):
        a = FaultSchedule("a", (FaultSpec("blackout"),))
        b = FaultSchedule("b", (FaultSpec("crash"),))
        both = a.compose(b)
        assert both.name == "a+b"
        assert [s.kind for s in both.specs] == ["blackout", "crash"]

    def test_shifted_moves_windows(self):
        sched = FaultSchedule(specs=(FaultSpec("blackout", start=2.0, duration=1.0),))
        moved = sched.shifted(10.0)
        assert moved.specs[0].start == 12.0

    def test_skew_at_combines_offset_and_drift(self):
        sched = FaultSchedule(specs=(
            FaultSpec("clock-skew", start=0.0, target="edge-clock", magnitude=0.5),
            FaultSpec("clock-drift", start=10.0, target="edge-clock", magnitude=100.0),
        ))
        # At t=20: offset 0.5 + 10 s of 100 ppm drift = 0.5 + 0.001.
        assert sched.skew_at("edge-clock", 20.0) == pytest.approx(0.501)
        assert sched.skew_at("operator-clock", 20.0) == 0.0

    def test_drift_caps_at_window_end(self):
        sched = FaultSchedule(specs=(
            FaultSpec("clock-drift", start=0.0, duration=5.0, target="*",
                      magnitude=1000.0),
        ))
        assert sched.skew_at("x", 100.0) == pytest.approx(0.005)

    def test_dict_roundtrip(self):
        sched = FAULT_PROFILES["chaos"]
        assert FaultSchedule.from_dict(sched.to_dict()) == sched

    def test_all_profiles_use_known_kinds(self):
        for profile in FAULT_PROFILES.values():
            for spec in profile.specs:
                assert spec.kind in FAULT_KINDS


class TestFaultTrace:
    def test_roundtrip_with_fault_entries(self, tmp_path):
        trace = FaultTrace()
        trace.record(0.5, "burst-loss", "downlink", "dropped")
        trace.record(1.5, "counter-reset", "modem", "counters zeroed")
        path = tmp_path / "faults.jsonl"
        trace.save(path)
        assert load_fault_trace(path) == trace

    def test_empty_trace_roundtrip(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        FaultTrace().save(path)
        loaded = load_fault_trace(path)
        assert len(loaded) == 0
        assert loaded == FaultTrace()

    def test_out_of_order_timestamps_preserved(self, tmp_path):
        # Injected-fault entries are logged in firing order; a trace
        # assembled from multiple points may interleave timestamps.  The
        # round-trip must preserve order, not silently sort.
        events = [
            FaultEvent(2.0, "blackout", "uplink"),
            FaultEvent(1.0, "burst-loss", "downlink"),
        ]
        trace = FaultTrace(events)
        path = tmp_path / "ooo.jsonl"
        trace.save(path)
        assert load_fault_trace(path).events == events

    def test_counts_by_kind(self):
        trace = FaultTrace()
        for _ in range(3):
            trace.record(0.0, "burst-loss", "x")
        trace.record(0.0, "crash", "y")
        assert trace.counts() == {"burst-loss": 3, "crash": 1}


class TestPacketPipe:
    def test_blackout_drops_and_labels(self):
        loop = EventLoop()
        seen = []
        inj = injector(loop, [FaultSpec("blackout", start=0.0, duration=1.0)])
        pipe = inj.pipe("downlink", seen.append)
        p = packet()
        pipe(p)
        assert seen == []
        assert p.dropped_at == "fault-blackout"
        assert inj.trace.counts() == {"blackout": 1}

    def test_outside_window_passes_clean(self):
        loop = EventLoop()
        seen = []
        inj = injector(loop, [FaultSpec("blackout", start=5.0, duration=1.0)])
        pipe = inj.pipe("downlink", seen.append)
        pipe(packet())
        assert len(seen) == 1
        assert len(inj.trace) == 0

    def test_burst_loss_is_seed_deterministic(self):
        def run(seed):
            loop = EventLoop()
            seen = []
            inj = injector(loop, [FaultSpec("burst-loss", magnitude=0.5)], seed=seed)
            pipe = inj.pipe("downlink", seen.append)
            for _ in range(100):
                pipe(packet())
            return len(seen), [e.t for e in inj.trace.events]

        assert run(1) == run(1)
        assert run(1)[0] != 100  # some loss actually happened

    def test_duplicate_delivers_twice(self):
        loop = EventLoop()
        seen = []
        inj = injector(loop, [FaultSpec("duplicate", magnitude=1.0, jitter_s=0.01)])
        pipe = inj.pipe("uplink", lambda p: seen.append(loop.now()))
        pipe(packet())
        loop.run()
        assert len(seen) == 2
        assert seen[0] == 0.0 and 0.0 <= seen[1] <= 0.01

    def test_reorder_lets_later_packet_overtake(self):
        loop = EventLoop()
        seen = []
        inj = injector(
            loop,
            [FaultSpec("reorder", start=0.0, duration=0.0005,
                       magnitude=1.0, jitter_s=0.05)],
        )
        pipe = inj.pipe("downlink", lambda p: seen.append(p.seq))
        first = packet()
        first.seq = 1
        pipe(first)  # held up to 50 ms
        second = packet()
        second.seq = 2
        loop.schedule_at(0.001, pipe, second)  # after the fault window
        loop.run()
        assert seen == [2, 1]

    def test_corrupt_counts_as_loss(self):
        loop = EventLoop()
        seen = []
        inj = injector(loop, [FaultSpec("corrupt", magnitude=1.0)])
        pipe = inj.pipe("downlink", seen.append)
        p = packet()
        pipe(p)
        assert seen == [] and p.dropped_at == "fault-corrupt"

    def test_target_filtering(self):
        loop = EventLoop()
        seen = []
        inj = injector(loop, [FaultSpec("blackout", target="uplink")])
        pipe = inj.pipe("downlink", seen.append)
        pipe(packet())
        assert len(seen) == 1


class TestComponentAdapters:
    def test_attach_link_wraps_delivery(self):
        loop = EventLoop()
        seen = []
        link = Link(loop, seen.append, latency=0.001, name="backhaul-dl")
        inj = injector(loop, [FaultSpec("blackout", target="backhaul-*")])
        inj.attach_link(link)
        link.send(packet())
        loop.run()
        assert seen == []
        # The link still counted the delivery attempt; the fault layer
        # dropped it post-hop with its own taxonomy label.
        assert link.delivered.packets == 1

    def test_transport_recovers_from_faulted_segment_path(self):
        # TcpLikeSender -> fault pipe -> receiver; ARQ must close the gap.
        loop = EventLoop()
        inj = injector(
            loop, [FaultSpec("burst-loss", start=0.0, duration=0.3, magnitude=0.9)]
        )
        receiver_holder = {}

        def wire(size, seq):
            sent_at = sender.first_sent_at(seq)
            loop.schedule(0.01, receiver_holder["rx"].on_segment, size, seq, sent_at)

        sender = TcpLikeSender(loop, inj.pipe_call("segments", wire), rto_s=0.05)
        receiver = TcpLikeReceiver(loop, lambda seq: loop.schedule(0.01, sender.on_ack, seq))
        receiver_holder["rx"] = receiver
        sender.offer(10 * 1400)
        loop.run()
        assert receiver.delivered_bytes == 10 * 1400
        assert sender.retransmitted_bytes > 0

    def test_counter_reset_rebaselines_operator_record(self):
        from repro.cellular.rrc import HardwareModem
        from repro.edge.monitors import CounterCheckMonitor

        loop = EventLoop()
        modem = HardwareModem(loop)
        monitor = CounterCheckMonitor(loop)
        inj = injector(loop, [FaultSpec("counter-reset", start=5.0, target="modem")])
        inj.attach_modem(modem)

        def traffic_and_check(nbytes):
            modem.count_downlink(packet(nbytes))
            monitor.on_report(modem.counter_check())

        loop.schedule_at(1.0, traffic_and_check, 1000)
        loop.schedule_at(9.0, traffic_and_check, 500)
        loop.run()
        # The reset zeroed the modem between checks; the monitor took the
        # post-reset absolute value as the delta instead of rejecting it.
        assert monitor.resets_observed == 1
        assert monitor.total == 1500
        assert inj.trace.counts() == {"counter-reset": 1}

    def test_counter_reset_in_the_past_is_not_armed(self):
        from repro.cellular.rrc import HardwareModem

        loop = EventLoop()
        loop.clock.advance_to(10.0)
        modem = HardwareModem(loop)
        inj = injector(loop, [FaultSpec("counter-reset", start=5.0, target="modem")])
        inj.attach_modem(modem)
        assert loop.pending() == 0


class TestNetdriverCrash:
    def test_negotiation_survives_operator_crash(self):
        """A crash-restart of the operator endpoint only delays the PoC."""
        from repro.cellular import CellularNetwork, RadioProfile, make_test_imsi
        from repro.core import DataPlan, OptimalStrategy, PartyKnowledge, PartyRole
        from repro.crypto import generate_keypair
        from repro.edge import EdgeDevice
        from repro.poc.netdriver import NetworkNegotiation

        edge_key = generate_keypair(512, random.Random(11))
        operator_key = generate_keypair(512, random.Random(12))
        loop = EventLoop()
        net = CellularNetwork(loop, StreamRegistry(3))
        imsi = make_test_imsi(1)
        device = EdgeDevice(loop, imsi, "app")
        access = net.attach_device(imsi, RadioProfile(), deliver=device.deliver)
        device.bind(access)
        negotiation = NetworkNegotiation(
            net, str(imsi), DataPlan(c=0.5, cycle_duration_s=60.0), 0.0,
            OptimalStrategy(PartyKnowledge(PartyRole.EDGE, 1000, 900)),
            OptimalStrategy(PartyKnowledge(PartyRole.OPERATOR, 900, 1000)),
            edge_key, operator_key, random.Random(5),
            retransmit_timeout_s=0.3,
        )
        inj = injector(
            loop, [FaultSpec("crash", start=0.01, duration=1.5, target="poc-operator")]
        )
        inj.attach_negotiation(negotiation)
        negotiation.start()
        loop.run_until(30.0)
        assert negotiation.complete
        result = negotiation.result()
        assert result.elapsed_s > 1.0  # the crash window stalled progress
        assert result.retransmissions > 0
        assert len(inj.trace) > 0


class TestWindowBoundaries:
    """End-exclusive window semantics, pinned at the exact edges.

    Every consumer of a fault window — ``FaultSpec.active``,
    ``FaultSchedule.active_specs``/``skew_at``, the injector's decision
    path, and the batched kernel's :class:`LaneFaultView` deciders —
    must agree that ``[start, start + duration)`` is half-open.  A
    single off-by-one here is a parity landmine between the reference
    engine and the lane replay.
    """

    WINDOW = dict(start=5.0, duration=2.0)

    @pytest.mark.parametrize(
        "t, active",
        [
            (4.999999, False),  # just before
            (5.0, True),        # start is inclusive
            (6.999999, True),   # just inside
            (7.0, False),       # start + duration is exclusive
            (7.000001, False),  # just after
        ],
    )
    def test_spec_active_edges(self, t, active):
        spec = FaultSpec("blackout", **self.WINDOW)
        assert spec.active(t) is active

    def test_zero_duration_window_never_activates(self):
        spec = FaultSpec("blackout", start=5.0, duration=0.0)
        assert spec.active(5.0) is False

    def test_active_specs_agrees_with_spec_active(self):
        schedule = FaultSchedule(specs=(FaultSpec("blackout", **self.WINDOW),))
        kinds = ("blackout",)
        assert schedule.active_specs(kinds, "uplink", 5.0) != []
        assert schedule.active_specs(kinds, "uplink", 7.0) == []

    def test_skew_window_end_exclusive(self):
        schedule = FaultSchedule(
            specs=(FaultSpec("clock-skew", magnitude=0.25, **self.WINDOW),)
        )
        assert schedule.skew_at("*", 5.0) == 0.25
        assert schedule.skew_at("*", 7.0) == 0.0  # offset vanishes at the edge

    def test_drift_skew_persists_capped_after_window_close(self):
        # 1000 ppm over a 2 s window accumulates 2 ms of error; unlike a
        # constant offset, that accumulation is *physical* — the clock
        # ticked wrong for 2 s — so it must persist after the window
        # closes, capped at the window-end value.
        schedule = FaultSchedule(
            specs=(FaultSpec("clock-drift", magnitude=1000.0, **self.WINDOW),)
        )
        assert schedule.skew_at("*", 5.0) == 0.0
        assert schedule.skew_at("*", 6.0) == pytest.approx(1000e-6 * 1.0)
        cap = 1000e-6 * 2.0
        assert schedule.skew_at("*", 7.0) == pytest.approx(cap)
        assert schedule.skew_at("*", 100.0) == pytest.approx(cap)

    def test_injector_decision_edges_draw_no_rng_outside_window(self):
        loop = EventLoop()
        inj = injector(loop, [FaultSpec("blackout", target="uplink", **self.WINDOW)])
        before = inj._rng.getstate()
        assert inj.decide_at("uplink", 5.0) == ("drop:blackout", 0.0)
        assert inj.decide_at("uplink", 7.0) == (None, 0.0)
        # Window membership is deterministic: neither edge drew RNG, and
        # only the in-window decision hit the trace.
        assert inj._rng.getstate() == before
        assert [e.t for e in inj.trace.events] == [5.0]

    def test_lane_view_decider_matches_injector_at_edges(self):
        loop = EventLoop()
        inj = injector(loop, [FaultSpec("blackout", target="uplink", **self.WINDOW)])
        decide = inj.lane_view(("uplink",)).decider("uplink")
        before = inj._rng.getstate()
        assert decide(5.0) == ("drop:blackout", 0.0)
        assert decide(7.0) == (None, 0.0)
        assert inj._rng.getstate() == before
