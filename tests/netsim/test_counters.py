"""CumulativeCounter window queries (the charging primitive)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.netsim.counters import CumulativeCounter


class TestBasics:
    def test_starts_empty(self):
        counter = CumulativeCounter()
        assert counter.total == 0
        assert counter.cumulative_at(100.0) == 0

    def test_accumulates(self):
        counter = CumulativeCounter()
        counter.add(1.0, 100)
        counter.add(2.0, 50)
        assert counter.total == 150

    def test_window_is_half_open_left(self):
        """Bytes exactly at t1 belong to the previous window."""
        counter = CumulativeCounter()
        counter.add(1.0, 100)
        assert counter.bytes_between(1.0, 2.0) == 0
        assert counter.bytes_between(0.0, 1.0) == 100

    def test_window_includes_right_edge(self):
        counter = CumulativeCounter()
        counter.add(2.0, 70)
        assert counter.bytes_between(1.0, 2.0) == 70

    def test_same_time_adds_merge(self):
        counter = CumulativeCounter()
        counter.add(1.0, 10)
        counter.add(1.0, 20)
        assert counter.cumulative_at(1.0) == 30
        assert counter.events == 1

    def test_rejects_time_reversal(self):
        counter = CumulativeCounter()
        counter.add(2.0, 10)
        with pytest.raises(ValueError):
            counter.add(1.0, 10)

    def test_rejects_negative_bytes(self):
        with pytest.raises(ValueError):
            CumulativeCounter().add(0.0, -1)

    def test_rejects_inverted_window(self):
        with pytest.raises(ValueError):
            CumulativeCounter().bytes_between(2.0, 1.0)


class TestProperties:
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=1000, allow_nan=False),
                st.integers(min_value=0, max_value=10_000),
            ),
            max_size=50,
        )
    )
    def test_adjacent_windows_partition_total(self, events):
        """Usage over (0, t] + (t, ∞) always equals the total."""
        counter = CumulativeCounter()
        for t, nbytes in sorted(events, key=lambda e: e[0]):
            counter.add(t, nbytes)
        split = 500.0
        left = counter.bytes_between(0.0, split)
        right = counter.bytes_between(split, 2000.0)
        at_zero = counter.cumulative_at(0.0)
        assert at_zero + left + right == counter.total

    @given(
        st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=30)
    )
    def test_window_sums_are_monotone_in_width(self, sizes):
        counter = CumulativeCounter()
        for i, nbytes in enumerate(sizes):
            counter.add(float(i), nbytes)
        n = len(sizes)
        narrow = counter.bytes_between(0.0, n / 2)
        wide = counter.bytes_between(0.0, float(n))
        assert narrow <= wide
