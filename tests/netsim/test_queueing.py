"""Drop-tail queue and strict-priority scheduler behaviour."""

import pytest

from repro.netsim.events import EventLoop
from repro.netsim.packet import Direction, Packet
from repro.netsim.queueing import DropTailQueue, PriorityScheduler


def packet(size=1000, qci=9):
    return Packet(size=size, flow_id="f", direction=Direction.DOWNLINK, qci=qci)


class TestDropTailQueue:
    def test_fifo_order(self):
        queue = DropTailQueue(10_000)
        first, second = packet(), packet()
        queue.push(first)
        queue.push(second)
        assert queue.pop() is first
        assert queue.pop() is second

    def test_pop_empty_returns_none(self):
        assert DropTailQueue(100).pop() is None

    def test_tail_drop_when_full(self):
        queue = DropTailQueue(1500)
        assert queue.push(packet(1000))
        overflow = packet(1000)
        assert not queue.push(overflow)
        assert overflow.dropped_at == "ip-congestion"
        assert queue.dropped.packets == 1

    def test_backlog_tracks_bytes(self):
        queue = DropTailQueue(10_000)
        queue.push(packet(400))
        queue.push(packet(600))
        assert queue.backlog_bytes == 1000
        queue.pop()
        assert queue.backlog_bytes == 600

    def test_drain_empties_queue(self):
        queue = DropTailQueue(10_000)
        for _ in range(3):
            queue.push(packet(100))
        drained = queue.drain()
        assert len(drained) == 3
        assert len(queue) == 0 and queue.backlog_bytes == 0

    def test_custom_drop_layer(self):
        queue = DropTailQueue(100, drop_layer="phy-intermittent")
        p = packet(200)
        queue.push(p)
        assert p.dropped_at == "phy-intermittent"

    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError):
            DropTailQueue(0)


class TestPriorityScheduler:
    def test_serves_at_configured_rate(self):
        loop = EventLoop()
        done = []
        sched = PriorityScheduler(loop, lambda p: done.append(loop.now()), rate_bps=8e6)
        sched.submit(packet(1000))  # 1 ms service at 8 Mbps
        loop.run()
        assert done == [pytest.approx(0.001)]

    def test_lower_qci_served_first(self):
        """A queued QCI-3 packet preempts queued QCI-9 packets."""
        loop = EventLoop()
        order = []
        sched = PriorityScheduler(loop, lambda p: order.append(p.qci), rate_bps=8e6)
        sched.submit(packet(1000, qci=9))  # starts serving immediately
        sched.submit(packet(1000, qci=9))
        sched.submit(packet(1000, qci=3))
        loop.run()
        assert order == [9, 3, 9]

    def test_queue_overflow_counts_as_drop(self):
        loop = EventLoop()
        sched = PriorityScheduler(
            loop, lambda p: None, rate_bps=8e3, queue_capacity_bytes=1500
        )
        for _ in range(5):
            sched.submit(packet(1000))
        assert sched.dropped.packets >= 2

    def test_backlog_reflects_queued_bytes(self):
        loop = EventLoop()
        sched = PriorityScheduler(loop, lambda p: None, rate_bps=8e3)
        sched.submit(packet(1000))  # in service
        sched.submit(packet(1000))  # queued
        assert sched.backlog_bytes() == 1000

    def test_all_submitted_eventually_served_or_dropped(self):
        loop = EventLoop()
        served = []
        sched = PriorityScheduler(loop, served.append, rate_bps=1e6)
        for qci in (9, 7, 3, 9, 7):
            sched.submit(packet(500, qci=qci))
        loop.run()
        assert len(served) + sched.dropped.packets == 5
