"""Property-based laws for the fault subsystem's value types.

Two families:

* JSON round-trips — :class:`FaultEvent` / :class:`FaultTrace` encode
  to JSON lines for on-disk traces; decoding must reproduce the exact
  events (floats, unicode details, order) or trace-diff debugging lies.
* Schedule algebra — :meth:`FaultSchedule.compose` / ``shifted`` are
  how experiments build chaos out of reusable pieces; the laws below
  are what make that composition safe to reason about locally.

Time-like values are drawn from a 0.25-step grid: every grid point is
an exact binary float, so shifts and window arithmetic incur no
rounding and the algebra laws hold as float *equality*, not approx.
"""

import json

from hypothesis import given
from hypothesis import strategies as st

from repro.netsim.faults import (
    BLACKOUT,
    BURST_LOSS,
    CLOCK_DRIFT,
    CLOCK_SKEW,
    CORRUPT,
    COUNTER_RESET,
    CRASH,
    DUPLICATE,
    FAULT_KINDS,
    REORDER,
    FaultEvent,
    FaultSchedule,
    FaultSpec,
    FaultTrace,
)

grid = st.integers(min_value=0, max_value=4000).map(lambda n: n * 0.25)
signed_grid = st.integers(min_value=-4000, max_value=4000).map(lambda n: n * 0.25)

_PROB_KINDS = (BURST_LOSS, REORDER, DUPLICATE, CORRUPT)
_FREE_KINDS = (BLACKOUT, CLOCK_SKEW, CLOCK_DRIFT, COUNTER_RESET, CRASH)

targets = st.sampled_from(
    ["*", "uplink", "downlink", "*link*", "modem", "edge-clock", "poc-*", "no-match"]
)


@st.composite
def fault_specs(draw):
    kind = draw(st.sampled_from(FAULT_KINDS))
    if kind in _PROB_KINDS:
        magnitude = draw(st.integers(min_value=0, max_value=8).map(lambda n: n / 8.0))
    else:
        magnitude = draw(signed_grid)
    return FaultSpec(
        kind=kind,
        start=draw(grid),
        duration=draw(st.none() | grid),
        target=draw(targets),
        magnitude=magnitude,
        jitter_s=draw(grid),
    )


schedules = st.builds(
    FaultSchedule,
    name=st.sampled_from(["faults", "chaos", "a", "b"]),
    specs=st.lists(fault_specs(), max_size=6).map(tuple),
)

events = st.builds(
    FaultEvent,
    t=st.floats(min_value=0.0, max_value=1e9, allow_nan=False),
    kind=st.sampled_from(FAULT_KINDS),
    point=targets,
    detail=st.text(max_size=40),  # includes empty and non-ASCII details
)


class TestJsonRoundTrips:
    @given(events)
    def test_event_round_trips(self, event):
        assert FaultEvent.from_json(event.to_json()) == event

    @given(events)
    def test_event_json_is_one_line(self, event):
        line = event.to_json()
        assert "\n" not in line
        assert json.loads(line)["detail"] == event.detail

    @given(st.lists(events, max_size=12))
    def test_trace_round_trips_in_order(self, evs):
        trace = FaultTrace(evs)
        lines = [event.to_json() for event in trace.events]
        loaded = FaultTrace(FaultEvent.from_json(line) for line in lines)
        assert loaded == trace
        assert loaded.events == list(evs)  # order preserved exactly

    @given(fault_specs())
    def test_spec_round_trips(self, spec):
        assert FaultSpec.from_dict(spec.to_dict()) == spec

    @given(schedules)
    def test_schedule_round_trips(self, schedule):
        assert FaultSchedule.from_dict(schedule.to_dict()) == schedule


class TestScheduleAlgebra:
    @given(schedules)
    def test_shift_by_zero_is_identity(self, schedule):
        assert schedule.shifted(0.0) == schedule

    @given(schedules, grid, grid)
    def test_shifts_accumulate(self, schedule, a, b):
        assert schedule.shifted(a).shifted(b) == schedule.shifted(a + b)

    @given(schedules, schedules, grid)
    def test_shift_distributes_over_compose(self, a, b, dt):
        assert a.compose(b).shifted(dt) == a.shifted(dt).compose(b.shifted(dt))

    @given(schedules, schedules, schedules)
    def test_compose_is_associative_on_specs(self, a, b, c):
        # Names record composition history, so compare the payload.
        assert a.compose(b).compose(c).specs == a.compose(b, c).specs

    @given(schedules, targets, grid, grid)
    def test_skew_invariant_under_shift_and_query_shift(self, schedule, point, t, dt):
        # Shifting the schedule and the query by the same dt sees the
        # same windows at the same relative offsets — grid floats make
        # (t + dt) - (start + dt) exact, so this is strict equality.
        assert schedule.shifted(dt).skew_at(point, t + dt) == schedule.skew_at(point, t)

    @given(schedules, targets, grid)
    def test_active_specs_union_under_compose(self, schedule, point, t):
        other = FaultSchedule(specs=(FaultSpec(BLACKOUT, start=0.0, target="*"),))
        composed = schedule.compose(other)
        kinds = FAULT_KINDS
        assert composed.active_specs(kinds, point, t) == (
            schedule.active_specs(kinds, point, t)
            + other.active_specs(kinds, point, t)
        )
