"""Coverage of smaller substrate paths not exercised elsewhere."""

import pytest

from repro.cellular.air import AirInterface
from repro.netsim import EventLoop, StreamRegistry
from repro.netsim.link import Link
from repro.netsim.packet import Direction, Packet


def packet(size=1000, qci=9):
    return Packet(size=size, flow_id="f", direction=Direction.UPLINK, qci=qci)


class TestLinkReset:
    def test_utilization_window_clear_forgets_backlog(self):
        loop = EventLoop()
        arrivals = []
        link = Link(loop, lambda p: arrivals.append(loop.now()), rate_bps=8e3)
        link.send(packet(1000))  # 1 s of serialization backlog
        link.utilization_window_clear()
        link.send(packet(1000))
        loop.run()
        # Without the clear the second packet would finish at t=2.
        assert arrivals[-1] == pytest.approx(1.0, abs=0.01)


class TestAirUtilization:
    def test_utilization_counts_background_and_foreground(self):
        loop = EventLoop()
        air = AirInterface(loop, StreamRegistry(1), "u", capacity_bps=10e6)
        assert air.utilization() == 0.0
        air.set_background(9, 5e6)
        assert air.utilization() == pytest.approx(0.5)

    def test_priority_aware_queue_delay(self):
        """QCI 5 ignores QCI 9 saturation; QCI 9 feels it."""
        loop = EventLoop()
        air = AirInterface(loop, StreamRegistry(1), "u", capacity_bps=10e6)
        air.set_background(9, 9.9e6)
        assert air.queue_delay(5) == 0.0
        assert air.queue_delay(9) > 0.0

    def test_qci_agnostic_delay_is_the_worst_case(self):
        loop = EventLoop()
        air = AirInterface(loop, StreamRegistry(1), "u", capacity_bps=10e6)
        air.set_background(9, 9.9e6)
        assert air.queue_delay() >= air.queue_delay(9)


class TestRadioElapsed:
    def test_outage_elapsed_zero_when_connected(self):
        from repro.cellular.radio import RadioChannel, RadioProfile

        loop = EventLoop()
        radio = RadioChannel(loop, StreamRegistry(1), RadioProfile())
        assert radio.outage_elapsed() == 0.0

    def test_outage_elapsed_tracks_current_outage(self):
        from repro.cellular.radio import RadioChannel, RadioProfile

        loop = EventLoop()
        profile = RadioProfile.for_disconnectivity(0.5, mean_outage_s=10.0)
        radio = RadioChannel(loop, StreamRegistry(2), profile)
        radio.start()
        loop.run_until(200.0)
        if not radio.connected:
            assert radio.outage_elapsed() > 0.0
        assert radio.measured_disconnectivity() > 0.1
