"""Packet and FlowStats semantics."""

import pytest

from repro.netsim.packet import Direction, FlowStats, Packet, Transport


def make_packet(size=100, **kw):
    defaults = dict(size=size, flow_id="f", direction=Direction.UPLINK)
    defaults.update(kw)
    return Packet(**defaults)


class TestPacket:
    def test_rejects_non_positive_size(self):
        with pytest.raises(ValueError):
            make_packet(size=0)
        with pytest.raises(ValueError):
            make_packet(size=-5)

    def test_packet_ids_unique(self):
        assert make_packet().pkt_id != make_packet().pkt_id

    def test_not_delivered_initially(self):
        assert not make_packet().delivered

    def test_delivered_after_timestamp(self):
        packet = make_packet()
        packet.delivered_at = 1.5
        assert packet.delivered

    def test_first_drop_layer_sticks(self):
        packet = make_packet()
        packet.mark_dropped("phy-rss")
        packet.mark_dropped("ip-congestion")
        assert packet.dropped_at == "phy-rss"

    def test_default_transport_is_udp(self):
        assert make_packet().transport is Transport.UDP


class TestFlowStats:
    def test_counts_packets_and_bytes(self):
        stats = FlowStats()
        stats.count(make_packet(size=100))
        stats.count(make_packet(size=250))
        assert stats.packets == 2
        assert stats.bytes == 350

    def test_merge_sums_elementwise(self):
        a, b = FlowStats(2, 200), FlowStats(3, 300)
        merged = a.merge(b)
        assert (merged.packets, merged.bytes) == (5, 500)

    def test_merge_does_not_mutate(self):
        a, b = FlowStats(1, 10), FlowStats(1, 10)
        a.merge(b)
        assert a.packets == 1 and b.packets == 1
