"""Shared test configuration: hypothesis profiles for the whole suite.

Two profiles keep property-based tests fast in the inner loop and
thorough in CI:

* ``dev`` (default) — few examples, derandomized, so ``pytest -x -q``
  stays quick and bit-stable from run to run;
* ``ci``  — 250 examples per property (the acceptance bar is 200+),
  still derandomized so a red CI run reproduces locally from the same
  code without chasing a random seed.  Select with
  ``HYPOTHESIS_PROFILE=ci``.

Deadlines are disabled globally: the simulator's virtual-time runs have
wall-time jitter (process scheduling, cache state) that hypothesis'
per-example deadline would misread as flakiness.

Individual heavyweight properties (whole-scenario chaos runs) cap their
own ``max_examples`` below the profile value and carry
``@pytest.mark.slow``; the tier-1 command excludes them via the
``-m "not slow"`` filter wired into ``addopts``.
"""

import os

from hypothesis import HealthCheck, settings

settings.register_profile(
    "dev",
    max_examples=25,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile(
    "ci",
    max_examples=250,
    deadline=None,
    derandomize=True,
    print_blob=True,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))
