"""Service lifecycle hardening: drain-aware close, sealed ledger,
eager config validation.

Each class here pins a bug that used to be latent:

* ``close()`` pushed shutdown sentinels with ``put_nowait`` and blew up
  with ``QueueFull`` whenever the queue was backlogged at shutdown;
* ``SettlementLedger.write()`` after ``close()`` kept appending to the
  in-memory view while the file handle silently dropped the line, so
  memory and disk diverged;
* ``ServiceConfig`` accepted zero/negative vendor rates, bursts and
  service times, deferring the blow-up to deep inside a worker.
"""

import pytest

from repro.netsim.events import EventLoop
from repro.service import ReconciliationService, ServiceConfig, SettlementLedger


class TestDrainAwareClose:
    def test_close_with_backlogged_queue_drains_and_settles(self):
        service = ReconciliationService(
            loop=EventLoop(), config=ServiceConfig(workers=2, queue_depth=4)
        )
        service.start()
        for i in range(6):
            assert service.submit(
                {"id": f"c{i}", "vendor": "v0", "kind": "probe"}
            ).accepted
        # Two claims are parked with the workers; four fill the queue to
        # capacity.  close() used to raise QueueFull right here.
        assert service.queue.qsize() == service.config.queue_depth
        service.close()
        assert service.settled_count() == 6
        assert service.crashed_workers() == []

    def test_close_on_drained_service(self):
        service = ReconciliationService(loop=EventLoop())
        service.start()
        assert service.submit({"id": "x", "vendor": "v0", "kind": "probe"}).accepted
        service.loop.run()
        service.close()
        assert service.settled_count() == 1

    def test_close_is_idempotent(self):
        service = ReconciliationService(loop=EventLoop())
        service.start()
        service.close()
        service.close()
        assert service.crashed_workers() == []


class TestSealedLedger:
    def test_write_after_close_raises(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        ledger = SettlementLedger(path)
        ledger.write({"type": "probe"})
        ledger.close()
        with pytest.raises(RuntimeError):
            ledger.write({"type": "late"})
        with pytest.raises(RuntimeError):
            ledger.journal({"type": "late"})
        # Memory and disk agree exactly — no silently dropped lines.
        assert path.read_text() == ledger.text()

    def test_pathless_ledger_also_seals(self):
        ledger = SettlementLedger()
        ledger.close()
        with pytest.raises(RuntimeError):
            ledger.write({"type": "late"})

    def test_close_is_idempotent(self, tmp_path):
        ledger = SettlementLedger(tmp_path / "ledger.jsonl")
        ledger.close()
        ledger.close()

    def test_lines_are_durable_before_close(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        ledger = SettlementLedger(path)
        ledger.write({"type": "shard", "index": 0})
        # Visible on disk immediately: the crash-durability contract.
        assert path.read_text() == ledger.text()
        ledger.close()


class TestServiceConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"workers": 0},
            {"queue_depth": 0},
            {"pool_workers": -1},
            {"vendor_rate_hz": 0.0},
            {"vendor_rate_hz": -8.0},
            {"vendor_burst": 0.0},
            {"vendor_burst": -1.0},
            {"shard_service_time_s": -0.05},
            {"poc_service_time_s": -1e-9},
            {"probe_service_time_s": -2.0},
        ],
    )
    def test_invalid_config_rejected_up_front(self, kwargs):
        with pytest.raises(ValueError):
            ServiceConfig(**kwargs)

    def test_zero_service_times_are_legal(self):
        ServiceConfig(
            shard_service_time_s=0.0,
            poc_service_time_s=0.0,
            probe_service_time_s=0.0,
        )
