"""Pooled settlement: CPU-parallel shard simulation, same bytes out.

``SimProcessPool`` bridges concurrent futures onto SimFutures so settle
workers can ``await`` real process-pool simulations; the index-ordered
fold keeps the ledger and aggregate bit-identical to the inline path
whatever the pool size — including across a kill-and-resume.
"""

import json

import pytest

from repro.experiments.fleet import FleetConfig
from repro.service import (
    ReplayConfig,
    ServiceConfig,
    SettlementLedger,
    SimProcessPool,
    replay_fleet,
    resume_fleet_replay,
)

FLEET = FleetConfig(ues=16, shard_size=2, seed=5, n_cycles=1, cycle_duration_s=10.0)
REPLAY = ReplayConfig(duration_s=30.0)


def _square(x):
    # Must live at module level: it crosses the process boundary.
    return x * x


def _explode(message):
    raise ValueError(message)


class TestSimProcessPool:
    def test_bridges_resolve_with_results(self):
        pool = SimProcessPool(2)
        futures = [pool.submit(_square, n) for n in range(5)]
        assert pool.pending() == 5
        while pool.pending():
            pool.wait_next()
        assert [f.result() for f in futures] == [0, 1, 4, 9, 16]
        pool.shutdown()

    def test_exception_propagates_to_bridge(self):
        pool = SimProcessPool(1)
        future = pool.submit(_explode, "boom")
        while pool.pending():
            pool.wait_next()
        assert isinstance(future.exception(), ValueError)
        assert "boom" in str(future.exception())
        pool.shutdown()

    def test_executor_is_lazy_and_shutdown_idempotent(self):
        pool = SimProcessPool(2)
        assert pool._executor is None  # no processes forked until needed
        pool.shutdown()
        pool.shutdown()

    def test_rejects_non_positive_worker_count(self):
        with pytest.raises(ValueError):
            SimProcessPool(0)


class TestPooledParity:
    @pytest.fixture(scope="class")
    def inline_run(self):
        result, stats, service = replay_fleet(FLEET, REPLAY)
        assert stats.dropped == 0 and result is not None
        return result, service

    @pytest.mark.parametrize("pool_workers", [1, 2])
    def test_ledger_bit_identical_across_pool_sizes(self, inline_run, pool_workers):
        inline_result, inline_service = inline_run
        result, stats, service = replay_fleet(
            FLEET,
            REPLAY,
            service_config=ServiceConfig(workers=2, pool_workers=pool_workers),
        )
        assert stats.dropped == 0 and result is not None
        assert service.crashed_workers() == []
        assert service.ledger.text() == inline_service.ledger.text()
        assert json.dumps(result.to_dict(), sort_keys=True) == json.dumps(
            inline_result.to_dict(), sort_keys=True
        )
        # Cold caches: every shard really went through the pool.
        assert service.report.simulated == 8

    def test_kill_and_resume_with_pool(self, inline_run, tmp_path):
        _, inline_service = inline_run
        pooled = ServiceConfig(pool_workers=2)
        path = tmp_path / "full.jsonl"
        _, stats, _ = replay_fleet(
            FLEET, REPLAY, service_config=pooled, ledger=SettlementLedger(path)
        )
        assert stats.dropped == 0
        raw = path.read_bytes()
        wounded = tmp_path / "wounded.jsonl"
        wounded.write_bytes(raw[: len(raw) // 2])
        result, stats2, service = resume_fleet_replay(
            FLEET, wounded, replay=REPLAY, service_config=pooled
        )
        assert stats2.dropped == 0 and result is not None
        assert service.ledger.text() == inline_service.ledger.text()
