"""Crash-resume: the ledger journal rebuilds a killed service exactly.

The differential contract extends across process death: a service
killed at ANY byte offset of its ledger stream and rebuilt through
:meth:`ReconciliationService.resume` finishes with a settlement view,
on-disk settlement prefix and ``FleetResult`` aggregate byte-identical
to an uninterrupted run — across worker counts and disk-cache
temperatures.  ``hypothesis`` drives randomized kill points; fixed
parametrized cuts pin the interesting structural offsets.
"""

import json
import random
import tempfile
from pathlib import Path

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.plan import DataPlan
from repro.core.strategies import OptimalStrategy, PartyKnowledge, PartyRole
from repro.crypto import generate_keypair
from repro.experiments.fleet import FleetConfig
from repro.experiments.parallel import ResultCache
from repro.netsim.events import EventLoop
from repro.poc.messages import PlanParams
from repro.poc.protocol import NegotiationDriver
from repro.service import (
    ReconciliationService,
    ReplayConfig,
    ServiceConfig,
    SettlementLedger,
    make_poc_claim,
    replay_fleet,
    resume_fleet_replay,
)

FLEET = FleetConfig(ues=16, shard_size=2, seed=5, n_cycles=1, cycle_duration_s=10.0)
REPLAY = ReplayConfig(duration_s=30.0)


def settlement_view(path: Path) -> str:
    """The byte-comparable settlement prefix of an on-disk ledger file."""
    lines = [
        line
        for line in path.read_text().splitlines()
        if "seq" in json.loads(line)
    ]
    return "".join(line + "\n" for line in lines)


@pytest.fixture(scope="module")
def baseline(tmp_path_factory):
    """One uninterrupted run: the reference bytes every resume must hit."""
    path = tmp_path_factory.mktemp("full") / "ledger.jsonl"
    result, stats, service = replay_fleet(FLEET, REPLAY, ledger=SettlementLedger(path))
    assert stats.dropped == 0 and result is not None
    return {
        "bytes": path.read_bytes(),
        "text": service.ledger.text(),
        "aggregate": json.dumps(result.to_dict(), sort_keys=True),
    }


def kill_and_resume(baseline, directory, cut, service_config=None, disk_cache=None):
    """Truncate the reference ledger at byte ``cut``, resume, and check
    every byte-identity the contract promises."""
    wounded = Path(directory) / "wounded.jsonl"
    wounded.write_bytes(baseline["bytes"][:cut])
    result, stats, service = resume_fleet_replay(
        FLEET,
        wounded,
        replay=REPLAY,
        service_config=service_config,
        disk_cache=disk_cache,
    )
    assert stats.dropped == 0 and result is not None
    assert service.crashed_workers() == []
    assert service.ledger.text() == baseline["text"]
    assert json.dumps(result.to_dict(), sort_keys=True) == baseline["aggregate"]
    assert settlement_view(wounded) == baseline["text"]
    return service


class TestKillResumeDifferential:
    @given(fraction=st.floats(min_value=0.0, max_value=1.0))
    def test_any_kill_point_resumes_byte_identical(self, baseline, fraction):
        cut = int(fraction * len(baseline["bytes"]))
        with tempfile.TemporaryDirectory() as tmp:
            kill_and_resume(baseline, tmp, cut)

    @pytest.mark.parametrize("workers", [1, 3])
    @pytest.mark.parametrize("quarter", [1, 2, 3])
    def test_across_worker_counts(self, baseline, tmp_path, workers, quarter):
        cut = len(baseline["bytes"]) * quarter // 4
        kill_and_resume(
            baseline, tmp_path, cut, service_config=ServiceConfig(workers=workers)
        )

    def test_empty_ledger_resumes_into_full_run(self, baseline, tmp_path):
        kill_and_resume(baseline, tmp_path, 0)

    def test_warm_disk_cache_resume_never_simulates(self, baseline, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        replay_fleet(FLEET, REPLAY, disk_cache=cache)  # warm the disk tier
        service = kill_and_resume(
            baseline, tmp_path, len(baseline["bytes"]) // 2, disk_cache=cache
        )
        assert service.report.simulated == 0

    def test_double_resume_of_completed_ledger_is_a_no_op(self, baseline, tmp_path):
        wounded = tmp_path / "wounded.jsonl"
        wounded.write_bytes(baseline["bytes"][: len(baseline["bytes"]) // 3])
        first, stats1, _ = resume_fleet_replay(FLEET, wounded, replay=REPLAY)
        assert stats1.dropped == 0
        # Resume the now-complete file: the journal already covers every
        # claim, so the client has nothing to submit and the bytes hold.
        second, stats2, service = resume_fleet_replay(FLEET, wounded, replay=REPLAY)
        assert stats2.dropped == 0
        assert stats2.submitted == 0
        assert service.ledger.text() == baseline["text"]
        assert json.dumps(second.to_dict(), sort_keys=True) == baseline["aggregate"]

    def test_resume_of_a_killed_resume(self, baseline, tmp_path):
        raw = baseline["bytes"]
        wounded = tmp_path / "wounded.jsonl"
        wounded.write_bytes(raw[: len(raw) // 4])
        _, stats, _ = resume_fleet_replay(FLEET, wounded, replay=REPLAY)
        assert stats.dropped == 0
        healed = wounded.read_bytes()
        # Kill the *resumed* incarnation mid-flight and resume again.
        again = {"bytes": healed, "text": baseline["text"],
                 "aggregate": baseline["aggregate"]}
        kill_and_resume(again, tmp_path, len(healed) * 2 // 3)


class TestLedgerResumeParsing:
    def test_torn_final_line_is_trimmed(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        ledger = SettlementLedger(path)
        ledger.write({"type": "shard", "index": 0})
        ledger.journal({"type": "accepted", "id": "a"})
        ledger.close()
        # A crash mid-write leaves a torn, unparseable tail.
        with path.open("a") as fh:
            fh.write('{"jseq": 1, "type": "acc')
        resumed = SettlementLedger.resume(path)
        assert len(resumed.lines) == 1
        assert [r["type"] for r in resumed.journal_records()] == ["accepted"]
        # The torn tail is gone from disk and appends continue cleanly.
        assert path.read_text().count("\n") == 2
        resumed.journal({"type": "accepted", "id": "b"})
        resumed.close()
        assert len(path.read_text().splitlines()) == 3

    def test_parseable_final_line_is_kept(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        ledger = SettlementLedger(path)
        ledger.write({"type": "shard", "index": 0})
        ledger.close()
        resumed = SettlementLedger.resume(path)
        assert len(resumed.lines) == 1

    def test_corrupt_middle_line_raises(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        path.write_text('{"seq": 0, "type": "shard"}\ngarbage\n{"seq": 1}\n')
        with pytest.raises(ValueError, match="line 2"):
            SettlementLedger.resume(path)

    def test_missing_file_resumes_empty(self, tmp_path):
        resumed = SettlementLedger.resume(tmp_path / "never-written.jsonl")
        assert resumed.lines == []
        assert resumed.journal_records() == []

    def test_replay_divergence_is_detected(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        ledger = SettlementLedger(path)
        ledger.write({"type": "shard", "index": 0})
        ledger.close()
        resumed = SettlementLedger.resume(path)
        # Replaying a *different* record over the durable prefix must
        # fail loudly instead of silently forking history.
        with pytest.raises(ValueError, match="diverged"):
            resumed.write({"type": "shard", "index": 99})


class TestJournalReplay:
    def _crash_copy(self, live_path: Path) -> Path:
        # Simulate process death: the crashed file is what's on disk,
        # independent of the still-open handle we abandon.
        crashed = live_path.with_name("crashed.jsonl")
        crashed.write_bytes(live_path.read_bytes())
        return crashed

    def test_accepted_but_unsettled_claim_requeues(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        service = ReconciliationService(
            loop=EventLoop(), ledger=SettlementLedger(path)
        )
        service.start()
        assert service.submit({"id": "p1", "vendor": "v0", "kind": "probe"}).accepted
        # Killed before the loop ever ran: the claim is journaled as
        # accepted with no outcome, so resume must requeue it.
        resumed = ReconciliationService.resume(self._crash_copy(path))
        assert resumed.queue.qsize() == 1
        resumed.start()
        resumed.drain()
        resumed.close()
        assert resumed.is_settled("p1")
        assert resumed.settled_count() == 1

    def test_duplicate_ids_still_rejected_after_resume(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        service = ReconciliationService(
            loop=EventLoop(), ledger=SettlementLedger(path)
        )
        service.start()
        service.submit({"id": "p1", "vendor": "v0", "kind": "probe"})
        service.loop.run()
        resumed = ReconciliationService.resume(self._crash_copy(path))
        resumed.start()
        assert resumed.submit(
            {"id": "p1", "vendor": "v0", "kind": "probe"}
        ).reason == "duplicate"

    def test_settled_claims_do_not_resettle(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        service = ReconciliationService(
            loop=EventLoop(), ledger=SettlementLedger(path)
        )
        service.start()
        service.submit({"id": "p1", "vendor": "v0", "kind": "probe"})
        service.loop.run()
        resumed = ReconciliationService.resume(self._crash_copy(path))
        journal_before = len(resumed.ledger.journal_records())
        assert resumed.queue.qsize() == 0
        resumed.start()
        resumed.drain()
        resumed.close()
        assert resumed.settled_count() == 1
        assert len(resumed.ledger.journal_records()) == journal_before

    def test_poc_receipts_survive_a_crash_before_flush(self, tmp_path):
        x_e, x_o = 1_000_000, 930_000
        plan = DataPlan(c=0.5, cycle_duration_s=3600.0)
        params = PlanParams(0.0, 3600.0, 0.5)
        edge_key = generate_keypair(512, random.Random(101))
        operator_key = generate_keypair(512, random.Random(102))
        vendor_keys = {"v0": (edge_key.public, operator_key.public)}
        driver = NegotiationDriver(
            plan, 0.0,
            OptimalStrategy(PartyKnowledge(PartyRole.EDGE, x_e, x_o)),
            OptimalStrategy(PartyKnowledge(PartyRole.OPERATOR, x_o, x_e)),
            edge_key, operator_key, random.Random(11),
        )
        poc = driver.run().poc
        claim = make_poc_claim("poc-1", "v0", poc, params)

        def run(service):
            service.start()
            assert service.submit(dict(claim)).accepted
            service.loop.run()

        reference = ReconciliationService(
            loop=EventLoop(),
            ledger=SettlementLedger(tmp_path / "full.jsonl"),
            vendor_keys=vendor_keys,
        )
        run(reference)
        reference.close()  # receipts flush into the settlement view

        crashing = ReconciliationService(
            loop=EventLoop(),
            ledger=SettlementLedger(tmp_path / "live.jsonl"),
            vendor_keys=vendor_keys,
        )
        run(crashing)  # settled, but killed before close() flushed
        resumed = ReconciliationService.resume(
            self._crash_copy(tmp_path / "live.jsonl"), vendor_keys=vendor_keys
        )
        resumed.start()
        resumed.drain()
        resumed.close()
        assert resumed.ledger.text() == reference.ledger.text()
        assert resumed.is_settled("poc-1")
