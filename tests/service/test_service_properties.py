"""Property tests: tiered cache, token buckets, eventual consistency."""

import tempfile
from collections import OrderedDict

from hypothesis import given, strategies as st

from repro.experiments.parallel import ResultCache
from repro.netsim.events import EventLoop
from repro.service import ReconciliationService, ServiceConfig, TieredCache, TokenBucket

KEYS = st.sampled_from([f"k{i}" for i in range(8)])

# An op is ("get", key) or ("put", key, payload-int).
OPS = st.lists(
    st.one_of(
        st.tuples(st.just("get"), KEYS),
        st.tuples(st.just("put"), KEYS, st.integers(0, 99)),
    ),
    max_size=60,
)


class TestTieredCacheModel:
    @given(ops=OPS, capacity=st.integers(1, 6))
    def test_matches_lru_model_and_counts_honestly(self, ops, capacity):
        cache = TieredCache(max_entries=capacity)
        model: OrderedDict = OrderedDict()
        gets = hits = 0
        for op in ops:
            if op[0] == "get":
                gets += 1
                got = cache.get(op[1])
                if op[1] in model:
                    model.move_to_end(op[1])
                    hits += 1
                    assert got == model[op[1]]
                else:
                    assert got is None
            else:
                _, key, payload = op
                value = {"payload": payload}
                cache.put(key, value)
                if key in model:
                    model.move_to_end(key)
                model[key] = value
                while len(model) > capacity:
                    model.popitem(last=False)
        assert cache.memory_keys() == list(model)
        assert cache.hits_memory == hits
        assert cache.misses == gets - hits
        assert cache.hits_disk == 0  # no disk tier attached

    @given(ops=OPS, capacity=st.integers(1, 4))
    def test_disk_tier_round_trips_evicted_entries(self, ops, capacity):
        puts = {}
        with tempfile.TemporaryDirectory() as tmp:
            cache = TieredCache(max_entries=capacity, disk=ResultCache(tmp))
            for op in ops:
                if op[0] == "put":
                    _, key, payload = op
                    puts[key] = {"payload": payload}
                    cache.put(key, puts[key])
            # Whatever was ever put — evicted from memory or not — must
            # come back exactly, and from *some* tier.
            for key, value in puts.items():
                assert cache.get(key) == value
            assert cache.hits_memory + cache.hits_disk == len(puts)
            assert len(cache) <= capacity

    @given(capacity=st.integers(1, 5), n=st.integers(1, 20))
    def test_spill_counter_equals_evictions(self, capacity, n):
        cache = TieredCache(max_entries=capacity)
        for i in range(n):
            cache.put(f"key-{i}", {"i": i})
        assert cache.spilled == max(0, n - capacity)
        assert len(cache) == min(n, capacity)


class TestTokenBucket:
    @given(
        rate=st.floats(0.1, 50.0, allow_nan=False),
        capacity=st.floats(1.0, 40.0, allow_nan=False),
        deltas=st.lists(st.floats(0.0, 5.0, allow_nan=False), max_size=40),
    )
    def test_refill_never_exceeds_capacity_nor_goes_negative(
        self, rate, capacity, deltas
    ):
        bucket = TokenBucket(rate, capacity)
        now = 0.0
        for delta in deltas:
            now += delta
            bucket.try_acquire(now)
            assert 0.0 <= bucket.tokens <= capacity + 1e-9

    @given(rate=st.floats(0.5, 20.0, allow_nan=False))
    def test_acquire_succeeds_exactly_capacity_times_at_t0(self, rate):
        capacity = 5.0
        bucket = TokenBucket(rate, capacity)
        grants = sum(bucket.try_acquire(0.0) for _ in range(10))
        assert grants == 5

    @given(
        rate=st.floats(0.5, 20.0, allow_nan=False),
        spend=st.integers(1, 5),
    )
    def test_deficit_delay_is_sufficient_wait(self, rate, spend):
        bucket = TokenBucket(rate, capacity=5.0)
        for _ in range(5):
            assert bucket.try_acquire(0.0)
        delay = bucket.deficit_delay(spend)
        assert delay > 0
        # Waiting exactly the hinted delay makes the acquire succeed.
        assert bucket.try_acquire(delay, spend)

    def test_clock_running_backwards_is_an_error(self):
        bucket = TokenBucket(1.0, 1.0)
        bucket.try_acquire(5.0)
        try:
            bucket.try_acquire(4.0)
        except ValueError:
            return
        raise AssertionError("backwards clock must raise")


class TestEventualConsistency:
    """Rejected claims retried with backoff settle exactly once."""

    @given(
        n_claims=st.integers(5, 30),
        rate=st.floats(1.0, 4.0, allow_nan=False),
        seed=st.integers(0, 2**16),
    )
    def test_probe_burst_settles_under_rate_limiting(self, n_claims, rate, seed):
        loop = EventLoop()
        service = ReconciliationService(
            loop=loop,
            config=ServiceConfig(
                workers=2,
                queue_depth=4,
                vendor_rate_hz=rate,
                vendor_burst=2.0,
                probe_service_time_s=0.01,
            ),
        )
        service.start()
        import random

        rng = random.Random(seed)

        def submit(ref, attempt):
            if service.is_settled(ref):
                return
            admission = service.submit(
                {"id": f"{ref}#{attempt}", "ref": ref, "vendor": "v0", "kind": "probe"}
            )
            if not admission.accepted:
                assert admission.reason in ("rate-limited", "backpressure")
                loop.schedule(0.2 + rng.random() * 0.2, submit, ref, attempt + 1)

        # The whole burst lands inside one second: far above the bucket
        # rate, so rate limiting and backpressure must both engage and
        # the retry loop must drain them all eventually.
        for i in range(n_claims):
            loop.schedule(rng.random(), submit, f"probe-{i}", 0)
        loop.run()
        service.close()
        assert service.settled_count() == n_claims
        assert service.crashed_workers() == []
        # Exactly-once: each logical ref settled a single time.
        settled = service.metrics.counter("service.settled", kind="probe").value
        assert settled == n_claims
