"""Fault paths: chaos ingestion, malformed claims, PoC rejection.

Graceful degradation contract: whatever arrives at the front door, no
worker dies — bad input becomes a ``service.rejected{reason=...}``
counter — and once the retry machinery settles every claim, the ledger
is the same ledger a fault-free run writes.
"""

import json
import random

import pytest

from repro.crypto import generate_keypair
from repro.experiments.fleet import FleetConfig
from repro.netsim.events import EventLoop
from repro.netsim.faults import (
    BLACKOUT,
    CORRUPT,
    FAULT_PROFILES,
    FaultSchedule,
    FaultSpec,
)
from repro.poc.messages import PlanParams, Poc
from repro.poc.protocol import NegotiationDriver
from repro.core.plan import DataPlan
from repro.core.strategies import OptimalStrategy, PartyKnowledge, PartyRole
from repro.service import (
    ReconciliationService,
    ReplayConfig,
    ServiceConfig,
    make_poc_claim,
    replay_fleet,
)

FLEET = FleetConfig(ues=16, shard_size=2, seed=3, n_cycles=2, cycle_duration_s=10.0)

#: The canned chaos profile (uplink duplicates, *link* loss, blackouts)
#: stacked with in-flight corruption aimed straight at the ingestion
#: point — the profile the issue calls the "canned chaos fault profile".
CHAOS_INGEST = FAULT_PROFILES["chaos"].compose(
    FaultSchedule(
        name="ingest-corrupt",
        specs=(FaultSpec(CORRUPT, start=0.0, target="uplink", magnitude=0.3),),
    )
)


class TestChaosIngestion:
    @pytest.fixture(scope="class")
    def chaos_run(self):
        return replay_fleet(
            FLEET, ReplayConfig(duration_s=120.0, ingest_faults=CHAOS_INGEST)
        )

    @pytest.fixture(scope="class")
    def clean_run(self):
        return replay_fleet(FLEET, ReplayConfig(duration_s=120.0))

    def test_no_worker_crashes(self, chaos_run):
        _, _, service = chaos_run
        assert service.crashed_workers() == []

    def test_every_claim_eventually_settles(self, chaos_run):
        result, stats, _ = chaos_run
        assert stats.dropped == 0
        assert result is not None

    def test_faults_actually_fired(self, chaos_run):
        _, stats, _ = chaos_run
        # The corrupt spec at p=0.3 over 8+ submissions makes a fully
        # quiet run astronomically unlikely — and it is deterministic,
        # so this is a fixed fact about (FLEET.seed, CHAOS_INGEST).
        assert stats.corrupted > 0
        assert stats.waves > 0

    def test_rejection_counters_populated(self, chaos_run):
        _, _, service = chaos_run
        assert service.rejections.get("malformed-shard", 0) > 0
        counter = service.metrics.counter("service.rejected", reason="malformed-shard")
        assert counter.value == service.rejections["malformed-shard"]

    def test_settlement_gap_is_zero_under_chaos(self, chaos_run, clean_run):
        # Stronger than Theorem 2's bracket: since every logical claim
        # settled exactly once from its pristine payload, the chaotic
        # ledger is byte-for-byte the clean ledger.
        _, _, chaotic = chaos_run
        _, _, clean = clean_run
        assert chaotic.ledger.text() == clean.ledger.text()


class TestRetryAccounting:
    """The loss branch used to schedule (and count) a retry for the
    final attempt even though the top-of-``deliver`` guard makes it a
    guaranteed no-op — overstating ``stats.retries`` by one per claim
    per wave versus the ``_RETRYABLE`` admission path's guard."""

    def test_lost_claims_count_only_real_resubmissions(self):
        fleet = FleetConfig(
            ues=2, shard_size=2, seed=3, n_cycles=1, cycle_duration_s=5.0
        )
        dead_link = FaultSchedule(
            name="dead-link",
            specs=(FaultSpec(BLACKOUT, start=0.0, target="uplink"),),
        )
        replay = ReplayConfig(
            duration_s=1.0, max_attempts=3, max_waves=2, ingest_faults=dead_link
        )
        result, stats, service = replay_fleet(fleet, replay)
        waves = 1 + replay.max_waves  # initial pass + every recovery wave
        assert result is None
        assert stats.dropped == 1  # the single shard never settles
        assert stats.waves == replay.max_waves
        # Every wave walks attempts 0..max_attempts inclusive; only
        # attempts 1..max_attempts are real resubmissions.
        assert stats.submitted == (replay.max_attempts + 1) * waves
        assert stats.lost == stats.submitted
        assert stats.retries == replay.max_attempts * waves
        assert service.crashed_workers() == []


class TestMalformedClaims:
    @pytest.fixture()
    def service(self):
        service = ReconciliationService(loop=EventLoop())
        service.start()
        return service

    def test_shape_violations_reject_synchronously(self, service):
        assert service.submit("not a dict").reason == "malformed"
        assert service.submit({"vendor": "v0", "kind": "probe"}).reason == "malformed"
        assert service.submit({"id": "a", "kind": "probe"}).reason == "malformed"
        assert (
            service.submit({"id": "a", "vendor": "v0", "kind": "pizza"}).reason
            == "unknown-kind"
        )

    def test_duplicate_id_rejected(self, service):
        claim = {"id": "c1", "vendor": "v0", "kind": "probe"}
        assert service.submit(claim).accepted
        assert service.submit(dict(claim)).reason == "duplicate"

    def test_poisoned_shard_payload_does_not_kill_worker(self, service):
        admission = service.submit(
            {"id": "bad", "vendor": "v0", "kind": "shard", "shard": {"index": "x"}}
        )
        assert admission.accepted  # admission is shallow; the worker decides
        service.loop.run()
        assert service.rejections.get("malformed-shard") == 1
        assert service.crashed_workers() == []

    def test_submit_after_close_rejected(self, service):
        service.loop.run()
        service.close()
        assert (
            service.submit({"id": "late", "vendor": "v0", "kind": "probe"}).reason
            == "closed"
        )


class TestPocClaims:
    X_E, X_O = 1_000_000, 930_000
    PLAN = DataPlan(c=0.5, cycle_duration_s=3600.0)
    PARAMS = PlanParams(0.0, 3600.0, 0.5)

    @pytest.fixture(scope="class")
    def keys(self):
        return (
            generate_keypair(512, random.Random(101)),
            generate_keypair(512, random.Random(102)),
        )

    def negotiate(self, keys, seed=11):
        edge_key, operator_key = keys
        driver = NegotiationDriver(
            self.PLAN, 0.0,
            OptimalStrategy(PartyKnowledge(PartyRole.EDGE, self.X_E, self.X_O)),
            OptimalStrategy(PartyKnowledge(PartyRole.OPERATOR, self.X_O, self.X_E)),
            edge_key, operator_key, random.Random(seed),
        )
        return driver.run().poc

    def fresh_service(self, keys):
        edge_key, operator_key = keys
        service = ReconciliationService(
            loop=EventLoop(),
            vendor_keys={"v0": (edge_key.public, operator_key.public)},
        )
        service.start()
        return service

    def test_valid_receipt_settles_within_theorem2_bracket(self, keys):
        service = self.fresh_service(keys)
        poc = self.negotiate(keys)
        admission = service.submit(make_poc_claim("poc-1", "v0", poc, self.PARAMS))
        assert admission.accepted
        service.loop.run()
        service.close()
        assert service.is_settled("poc-1")
        receipt = json.loads(service.ledger.lines[-1])
        assert receipt["type"] == "poc"
        # Theorem 2: the negotiated volume lies between the claims.
        assert self.X_O <= receipt["volume"] <= self.X_E

    def test_replayed_receipt_rejected(self, keys):
        service = self.fresh_service(keys)
        poc = self.negotiate(keys)
        service.submit(make_poc_claim("poc-1", "v0", poc, self.PARAMS))
        service.submit(make_poc_claim("poc-2", "v0", poc, self.PARAMS))
        service.loop.run()
        service.close()
        assert service.rejections.get("poc-replayed-poc") == 1
        assert service.settled_count() == 1

    def test_tampered_volume_rejected(self, keys):
        service = self.fresh_service(keys)
        poc = self.negotiate(keys)
        forged = Poc(
            poc.role, poc.plan, poc.volume + 1, poc.peer_cda,
            poc.signature, poc.nonce_edge, poc.nonce_operator,
        )
        service.submit(make_poc_claim("forged", "v0", forged, self.PARAMS))
        service.loop.run()
        service.close()
        assert service.rejections.get("poc-poc-signature") == 1
        assert not service.is_settled("forged")

    def test_unknown_vendor_rejected(self, keys):
        service = self.fresh_service(keys)
        poc = self.negotiate(keys)
        service.submit(make_poc_claim("poc-1", "nobody", poc, self.PARAMS))
        service.loop.run()
        service.close()
        assert service.rejections.get("unknown-vendor") == 1

    def test_undecodable_poc_rejected(self, keys):
        service = self.fresh_service(keys)
        claim = make_poc_claim("poc-1", "v0", self.negotiate(keys), self.PARAMS)
        claim["poc"] = "deadbeef"
        service.submit(claim)
        service.loop.run()
        service.close()
        assert service.rejections.get("malformed-poc") == 1
