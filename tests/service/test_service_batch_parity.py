"""Differential harness: service settlement ≡ batch aggregate, bitwise.

The reconciliation service must be an *online refactoring* of the batch
fleet engine, not a reimplementation: replaying a fleet as claim traffic
has to produce the exact bytes ``run_fleet`` produces — across service
worker counts, and whether the shared disk cache is cold or warm.
"""

import json

import pytest

from repro.experiments.fleet import FleetConfig, run_fleet
from repro.experiments.parallel import ResultCache
from repro.service import ReplayConfig, ServiceConfig, replay_fleet

# 64 UEs over 8 shards: large enough that shard settlement interleaves
# across workers, small enough for the tier-1 inner loop.
FLEET = FleetConfig(ues=64, shard_size=8, seed=11, n_cycles=2, cycle_duration_s=10.0)
REPLAY = ReplayConfig(duration_s=30.0)

WORKER_COUNTS = (1, 3)


def aggregate_json(result) -> str:
    return json.dumps(result.to_dict(), sort_keys=True)


@pytest.fixture(scope="module")
def batch():
    return run_fleet(FLEET, workers=0, cache=False)


@pytest.fixture(scope="module")
def service_runs():
    runs = {}
    for workers in WORKER_COUNTS:
        runs[workers] = replay_fleet(
            FLEET, REPLAY, ServiceConfig(workers=workers)
        )
    return runs


class TestBatchParity:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_settlement_settles_every_claim(self, service_runs, workers):
        result, stats, service = service_runs[workers]
        assert stats.dropped == 0
        assert result is not None
        assert service.crashed_workers() == []

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_aggregate_bit_identical_to_batch(self, batch, service_runs, workers):
        result, _, _ = service_runs[workers]
        assert aggregate_json(result) == aggregate_json(batch)

    def test_ledger_bit_identical_across_worker_counts(self, service_runs):
        ledgers = {
            workers: service.ledger.text()
            for workers, (_, _, service) in service_runs.items()
        }
        texts = set(ledgers.values())
        assert len(texts) == 1, "ledger bytes must not depend on worker count"

    def test_ledger_structure(self, service_runs):
        _, _, service = service_runs[WORKER_COUNTS[0]]
        records = [json.loads(line) for line in service.ledger.lines]
        shard_lines = [r for r in records if r["type"] == "shard"]
        ue_lines = [r for r in records if r["type"] == "ue"]
        assert [r["index"] for r in shard_lines] == list(range(8))
        assert len(ue_lines) == FLEET.ues
        assert records[-1]["type"] == "aggregate"
        # seq is gap-free: the stream as written is the stream on disk.
        assert [r["seq"] for r in records] == list(range(len(records)))


class TestCacheStateParity:
    def test_warm_disk_cache_serves_and_stays_bit_identical(self, batch, tmp_path):
        # Cold pass populates the shared content-addressed store ...
        cache_dir = tmp_path / "cache"
        cold, cold_stats, cold_service = replay_fleet(
            FLEET, REPLAY, disk_cache=ResultCache(cache_dir)
        )
        assert cold_stats.dropped == 0
        assert cold_service.report.simulated == 8
        assert cold_service.report.cached == 0

        # ... and the warm pass must answer entirely from it, bit-equal.
        warm, warm_stats, warm_service = replay_fleet(
            FLEET, REPLAY, disk_cache=ResultCache(cache_dir)
        )
        assert warm_stats.dropped == 0
        assert warm_service.report.cached == 8
        assert warm_service.report.simulated == 0
        assert aggregate_json(warm) == aggregate_json(batch)
        assert warm_service.ledger.text() == cold_service.ledger.text()

    def test_batch_engine_warms_the_service(self, tmp_path):
        cache_dir = tmp_path / "cache"
        batch = run_fleet(FLEET, workers=0, cache=ResultCache(cache_dir))
        result, stats, service = replay_fleet(
            FLEET, REPLAY, disk_cache=ResultCache(cache_dir)
        )
        assert stats.dropped == 0
        assert service.report.cached == 8
        assert aggregate_json(result) == aggregate_json(batch)
