"""The deterministic coroutine runtime (futures, tasks, queues)."""

import pytest

from repro.netsim.events import EventLoop
from repro.service.sim_async import QueueFull, SimFuture, SimQueue, SimRuntime


@pytest.fixture()
def loop():
    return EventLoop()


@pytest.fixture()
def runtime(loop):
    return SimRuntime(loop)


class TestSimFuture:
    def test_resolves_once(self):
        future = SimFuture()
        future.set_result(7)
        assert future.done() and future.result() == 7
        with pytest.raises(RuntimeError):
            future.set_result(8)

    def test_exception_propagates_to_awaiter(self, runtime, loop):
        future = SimFuture()

        async def waits():
            await future

        task = runtime.spawn(waits())
        future.set_exception(ValueError("boom"))
        loop.run()
        assert isinstance(task.exception(), ValueError)

    def test_callbacks_run_immediately_when_done(self):
        future = SimFuture()
        future.set_result(1)
        seen = []
        future.add_done_callback(seen.append)
        assert seen == [future]


class TestSimTask:
    def test_runs_to_first_await_synchronously(self, runtime):
        order = []

        async def worker():
            order.append("started")
            await runtime.sleep(1.0)
            order.append("woke")

        runtime.spawn(worker())
        assert order == ["started"]

    def test_sleep_ordering_follows_virtual_time(self, runtime, loop):
        order = []

        async def sleeper(name, delay):
            await runtime.sleep(delay)
            order.append(name)

        runtime.spawn(sleeper("late", 3.0))
        runtime.spawn(sleeper("early", 1.0))
        runtime.spawn(sleeper("mid", 2.0))
        loop.run()
        assert order == ["early", "mid", "late"]

    def test_awaiting_foreign_awaitable_is_an_error(self, runtime):
        class Foreign:
            def __await__(self):
                yield "not-a-sim-future"

        async def bad():
            await Foreign()

        task = runtime.spawn(bad())
        assert isinstance(task.exception(), TypeError)

    def test_crashed_tasks_are_reported(self, runtime, loop):
        async def dies():
            await runtime.sleep(0.1)
            raise RuntimeError("worker bug")

        runtime.spawn(dies())
        loop.run()
        assert len(runtime.crashed_tasks()) == 1

    def test_task_result(self, runtime, loop):
        async def answer():
            await runtime.sleep(0.5)
            return 42

        task = runtime.spawn(answer())
        loop.run()
        assert task.result() == 42


class TestSimQueue:
    def test_fifo_order(self, runtime, loop):
        queue = SimQueue()
        got = []

        async def consumer():
            for _ in range(3):
                got.append(await queue.get())

        runtime.spawn(consumer())
        for item in ("a", "b", "c"):
            queue.put_nowait(item)
        loop.run()
        assert got == ["a", "b", "c"]

    def test_put_nowait_raises_at_capacity(self):
        queue = SimQueue(maxsize=2)
        queue.put_nowait(1)
        queue.put_nowait(2)
        with pytest.raises(QueueFull):
            queue.put_nowait(3)

    def test_hand_off_bypasses_capacity(self, runtime, loop):
        queue = SimQueue(maxsize=1)
        got = []

        async def consumer():
            got.append(await queue.get())
            got.append(await queue.get())

        runtime.spawn(consumer())
        # Both hand straight to the waiting getter; capacity never binds.
        queue.put_nowait("x")
        queue.put_nowait("y")
        loop.run()
        assert got == ["x", "y"]

    def test_blocking_put_applies_backpressure(self, runtime, loop):
        queue = SimQueue(maxsize=1)
        order = []

        async def producer():
            for i in range(3):
                await queue.put(i)
                order.append(f"put-{i}")

        async def consumer():
            while len(order) < 6:
                await runtime.sleep(1.0)
                item = await queue.get()
                order.append(f"got-{item}")

        runtime.spawn(producer())
        runtime.spawn(consumer())
        loop.run_until(10.0)
        # put-2 needs two slots freed; the first get (logged as got-0)
        # can only release one.
        assert order.index("put-2") > order.index("got-0")
        assert [o for o in order if o.startswith("got")] == ["got-0", "got-1", "got-2"]

    def test_determinism_across_runs(self):
        def run_once():
            loop = EventLoop()
            runtime = SimRuntime(loop)
            queue = SimQueue(maxsize=4)
            log = []

            async def worker(name):
                while True:
                    item = await queue.get()
                    if item is None:
                        return
                    await runtime.sleep(0.25)
                    log.append((name, item, loop.now()))

            for name in ("w0", "w1"):
                runtime.spawn(worker(name))
            for i in range(8):
                loop.schedule(i * 0.1, queue.put_nowait, i)
            loop.schedule(5.0, queue.put_nowait, None)
            loop.schedule(5.0, queue.put_nowait, None)
            loop.run()
            return log

        assert run_once() == run_once()


class TestDeepHandoffChains:
    """Resolving one future used to recurse through every dependent
    callback (``_step`` -> resolve -> ``_step`` ...), so a long relay
    chain blew the interpreter stack.  The dispatch trampoline flattens
    the chain to constant stack depth."""

    def test_long_relay_chain_runs_in_constant_stack(self, runtime):
        depth = 5000  # far past the default recursion limit

        async def relay(upstream):
            return await upstream + 1

        head = SimFuture()
        tail = head
        for _ in range(depth):
            tail = runtime.spawn(relay(tail))
        head.set_result(0)
        assert tail.done()
        assert tail.result() == depth

    def test_deep_queue_handoff_chain(self, loop, runtime):
        # Same failure mode through SimQueue's getter hand-off path.
        queue = SimQueue(maxsize=1)
        total = 4000
        seen = []

        async def consumer():
            for _ in range(total):
                seen.append(await queue.get())

        runtime.spawn(consumer())
        for i in range(total):
            queue.put_nowait(i)
        loop.run()
        assert seen == list(range(total))

    def test_force_put_ignores_capacity(self, loop, runtime):
        queue = SimQueue(maxsize=1)
        queue.put_nowait("a")
        with pytest.raises(QueueFull):
            queue.put_nowait("b")
        queue.force_put("b")
        assert queue.qsize() == 2

        got = []

        async def drain():
            got.append(await queue.get())
            got.append(await queue.get())

        runtime.spawn(drain())
        loop.run()
        assert got == ["a", "b"]

    def test_force_put_hands_to_parked_getter(self, loop, runtime):
        queue = SimQueue(maxsize=1)
        got = []

        async def getter():
            got.append(await queue.get())

        runtime.spawn(getter())
        loop.run()  # parks the getter
        queue.force_put("x")
        assert got == ["x"]
