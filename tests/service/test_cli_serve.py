"""The ``repro serve`` subcommand and ``repro fleet --via-service``."""

import json

import pytest

from repro.experiments.cli import main


@pytest.fixture(autouse=True)
def _no_env_engine(monkeypatch):
    for var in ("REPRO_WORKERS", "REPRO_CACHE_DIR", "REPRO_FAULT_PROFILE"):
        monkeypatch.delenv(var, raising=False)


FLEET_ARGS = ["--ues", "8", "--shard-size", "2", "--seed", "3", "--no-cache"]


class TestServe:
    def test_clean_soak_exits_zero(self, tmp_path, capsys):
        code = main(
            ["serve", *FLEET_ARGS, "--duration", "10",
             "--assert-clean", "--out-dir", str(tmp_path)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "dropped claims   : 0" in out
        assert "crashed workers  : 0" in out

    def test_manifest_and_settlement_artifacts(self, tmp_path):
        settlement = tmp_path / "settlement.jsonl"
        code = main(
            ["serve", *FLEET_ARGS, "--duration", "10",
             "--settlement", str(settlement), "--out-dir", str(tmp_path)]
        )
        assert code == 0
        manifest = json.loads((tmp_path / "serve.manifest.json").read_text())
        assert manifest["engine"]["claims_dropped"] == 0
        assert manifest["engine"]["crashed_workers"] == 0
        lines = [json.loads(l) for l in settlement.read_text().splitlines()]
        assert lines[-1]["type"] == "aggregate"
        assert sum(1 for l in lines if l["type"] == "ue") == 8

    def test_chaotic_ingestion_still_clean(self, tmp_path):
        code = main(
            ["serve", *FLEET_ARGS, "--duration", "60",
             "--ingest-fault-profile", "chaos",
             "--assert-clean", "--out-dir", str(tmp_path)]
        )
        assert code == 0

    def test_unknown_ingest_profile_is_usage_error(self, tmp_path):
        code = main(
            ["serve", *FLEET_ARGS, "--ingest-fault-profile", "nope",
             "--out-dir", str(tmp_path)]
        )
        assert code == 2


class TestFleetViaService:
    def test_aggregate_matches_batch_engine(self, tmp_path, capsys):
        args = ["fleet", *FLEET_ARGS, "--out-dir", str(tmp_path)]
        assert main(args) == 0
        batch = json.loads((tmp_path / "fleet.manifest.json").read_text())

        via = tmp_path / "via"
        assert main([*args[:-1], str(via), "--via-service"]) == 0
        service = json.loads((via / "fleet.manifest.json").read_text())

        def aggregate_sha(manifest):
            (entry,) = [
                a for a in manifest["artifacts"] if a["name"] == "fleet-aggregate"
            ]
            return entry["sha256"]

        assert aggregate_sha(service) == aggregate_sha(batch)

    def test_via_service_rejects_per_ue_csv(self, tmp_path):
        code = main(
            ["fleet", *FLEET_ARGS, "--via-service",
             "--per-ue-csv", str(tmp_path / "ue.csv"),
             "--out-dir", str(tmp_path)]
        )
        assert code == 2
