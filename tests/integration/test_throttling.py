"""Quota throttling end-to-end: the 'unlimited' plan's 128 Kbps tail."""

import pytest

from repro.cellular import CellularNetwork, QuotaPolicy, RadioProfile, make_test_imsi
from repro.core import QuotaWatcher
from repro.netsim import Direction, EventLoop, Packet, StreamRegistry


def build(quota_bytes, throttle_bps=128_000.0, seed=1):
    loop = EventLoop()
    net = CellularNetwork(loop, StreamRegistry(seed))
    imsi = make_test_imsi(1)
    delivered = []
    access = net.attach_device(imsi, RadioProfile(), deliver=delivered.append)
    net.create_bearer(imsi, "app")
    net.pcrf.set_quota("app", QuotaPolicy(quota_bytes=quota_bytes, throttle_bps=throttle_bps))
    return loop, net, access, delivered


def stream_downlink(loop, net, rate_pps=50, size=1000, duration=20.0):
    count = int(rate_pps * duration)
    for i in range(count):
        loop.schedule_at(i / rate_pps, net.send_downlink, Packet(
            size=size, flow_id="app", direction=Direction.DOWNLINK,
        ))
    return count * size


class TestThrottling:
    def test_full_speed_under_quota(self):
        loop, net, access, delivered = build(quota_bytes=10**9)
        offered = stream_downlink(loop, net)
        loop.run()
        assert access.modem.dl_received.total == offered
        assert net.spgw.policed_drops.packets == 0

    def test_throttle_kicks_in_after_quota(self):
        """AT&T-style plan: full speed to the quota, ~128 Kbps after."""
        loop, net, access, delivered = build(quota_bytes=100_000)
        stream_downlink(loop, net, rate_pps=50, size=1000, duration=20.0)  # 400 kbps
        loop.run()
        # Everything up to the quota passed at full speed...
        assert access.modem.dl_received.total >= 100_000
        # ...then the policer clamped the rest near the throttle rate.
        assert net.spgw.policed_drops.packets > 0
        post_quota = access.modem.dl_received.total - 100_000
        # 18 s of post-quota time at 128 kbps = 288 kB + one 16 kB burst.
        assert post_quota <= 305_000

    def test_policed_traffic_not_charged(self):
        loop, net, access, delivered = build(quota_bytes=100_000)
        offered = stream_downlink(loop, net, duration=20.0)
        loop.run()
        charged = net.gateway_usage("app", 0, loop.now(), Direction.DOWNLINK)
        assert charged < offered
        assert charged == access.modem.dl_received.total  # no loss besides policing

    def test_quota_watcher_pairs_with_throttling(self):
        """The prepaid workflow: the watcher closes the tranche as the
        policer starts squeezing."""
        loop, net, access, delivered = build(quota_bytes=100_000)
        bearer = net.bearers.by_flow("app")
        watcher = QuotaWatcher(loop, bearer.downlink, quota_bytes=100_000,
                               max_cycle_s=1000.0, poll_interval_s=0.5)
        watcher.start()
        stream_downlink(loop, net, duration=20.0)
        loop.run_until(25.0)
        assert watcher.triggers
        assert watcher.triggers[0].by_quota
        assert watcher.triggers[0].charged_bytes == pytest.approx(100_000, rel=0.25)
