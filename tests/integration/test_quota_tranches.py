"""Prepaid tranches: quota-triggered cycles each negotiated to a PoC."""

import random

import pytest

from repro.cellular import CellularNetwork, RadioProfile, make_test_imsi
from repro.core import (
    DataPlan,
    OptimalStrategy,
    PartyKnowledge,
    PartyRole,
    QuotaWatcher,
)
from repro.crypto import generate_keypair
from repro.edge import EdgeDevice, EdgeServer
from repro.netsim import EventLoop, StreamRegistry
from repro.poc import NegotiationDriver


@pytest.fixture(scope="module")
def keys():
    rng = random.Random(71)
    return generate_keypair(512, rng), generate_keypair(512, rng)


class TestPrepaidWorkflow:
    def test_each_tranche_negotiates_to_a_poc(self, keys):
        """Stream until several quota tranches close; negotiate each from
        the parties' per-tranche records and check every tranche's charge
        lands on its own x̂."""
        edge_key, operator_key = keys
        loop = EventLoop()
        net = CellularNetwork(loop, StreamRegistry(3))
        imsi = make_test_imsi(1)
        device = EdgeDevice(loop, imsi, "prepaid")
        access = net.attach_device(
            imsi, RadioProfile(base_loss=0.05), deliver=device.deliver
        )
        device.bind(access)
        net.create_bearer(imsi, "prepaid")
        server = EdgeServer(loop, net, "prepaid")
        bearer = net.bearers.by_flow("prepaid")
        watcher = QuotaWatcher(
            loop, bearer.uplink, quota_bytes=200_000, max_cycle_s=10_000.0,
            poll_interval_s=0.5,
        )
        watcher.start()
        for i in range(1200):
            loop.schedule_at(i * 0.05, device.send, 1000)  # 160 kbps offered
        loop.run_until(70.0)

        assert len(watcher.triggers) >= 2
        rng = random.Random(3)
        for trigger in watcher.triggers[:2]:
            assert trigger.by_quota
            t1, t2 = trigger.cycle.t_start, trigger.cycle.t_end
            sent = device.ul_monitor.true_usage(t1, t2)
            received = bearer.uplink.bytes_between(t1, t2)
            plan = DataPlan(c=0.5, cycle_duration_s=trigger.cycle.duration)
            driver = NegotiationDriver(
                plan, t1,
                OptimalStrategy(PartyKnowledge(PartyRole.EDGE, sent, received)),
                OptimalStrategy(PartyKnowledge(PartyRole.OPERATOR, received, sent)),
                edge_key, operator_key, rng,
            )
            result = driver.run()
            expected = plan.expected_charge(sent, received)
            assert result.volume == pytest.approx(expected, abs=1)
            # Each tranche's received volume is (about) the quota.
            assert received == pytest.approx(200_000, rel=0.2)


class TestHandoverDuringOutage:
    def test_evict_cancels_rlf_timer(self):
        """A UE evicted mid-outage must not fire the source cell's RLF."""
        from repro.cellular import NetworkConfig
        from repro.cellular.enodeb import ENodeBConfig

        loop = EventLoop()
        net = CellularNetwork(
            loop, StreamRegistry(5),
            NetworkConfig(n_cells=2, enodeb=ENodeBConfig(rlf_timeout_s=2.0)),
        )
        imsi = make_test_imsi(1)
        access = net.attach_device(imsi, RadioProfile(), cell=0)
        net.create_bearer(imsi, "app")
        ue = net.enodebs[0].ue(str(imsi))
        # Outage starts at the source cell...
        access.radio.connected = False
        for callback in access.radio.on_outage_start:
            callback()
        assert ue.rlf_timer is not None
        # ...the UE hands over before the RLF timer expires.
        net.handover(imsi, 1, interruption_s=0.1)
        loop.run_until(5.0)
        # No detach fired: the UE is still attached at the target.
        assert ue.attached
        assert net.mme.is_attached(str(imsi))
