"""Full-stack integration: traffic → records → negotiation → PoC → verify.

The complete TLC lifecycle on the simulated testbed, including the paper's
central claims as executable assertions.
"""

import random

import pytest

from repro.core import (
    DataPlan,
    OptimalStrategy,
    PartyKnowledge,
    PartyRole,
)
from repro.crypto import generate_keypair
from repro.experiments.runner import ScenarioRunner
from repro.experiments.scenarios import VRIDGE_DL, WEBCAM_UDP_UL
from repro.poc import NegotiationDriver, PlanParams, PublicVerifier


@pytest.fixture(scope="module")
def keys():
    rng = random.Random(31)
    return generate_keypair(512, rng), generate_keypair(512, rng)


class TestFullLifecycle:
    def _negotiate_cycle(self, config, keys, seed=21):
        """Run a scenario cycle and take its records through the PoC."""
        runner = ScenarioRunner(config.with_(n_cycles=1, seed=seed))
        runner.simulate()
        usage = runner.collect()[0]
        edge_key, operator_key = keys
        plan = DataPlan(c=config.c, cycle_duration_s=config.cycle_duration_s)
        driver = NegotiationDriver(
            plan, usage.cycle.t_start,
            OptimalStrategy(
                PartyKnowledge(PartyRole.EDGE, usage.edge_sent_record, usage.edge_received_estimate),
                accept_tolerance=0.05,
            ),
            OptimalStrategy(
                PartyKnowledge(
                    PartyRole.OPERATOR,
                    usage.operator_received_record,
                    usage.operator_sent_estimate,
                ),
                accept_tolerance=0.05,
            ),
            edge_key, operator_key, random.Random(seed),
        )
        return usage, plan, driver.run()

    def test_uplink_cycle_to_verified_poc(self, keys):
        usage, plan, result = self._negotiate_cycle(WEBCAM_UDP_UL, keys)
        edge_key, operator_key = keys
        verifier = PublicVerifier(plan)
        params = PlanParams(usage.cycle.t_start, usage.cycle.t_end, plan.c)
        report = verifier.verify(result.poc, params, edge_key.public, operator_key.public)
        assert report.ok
        assert report.volume == result.volume

    def test_negotiated_volume_tracks_ground_truth(self, keys):
        usage, plan, result = self._negotiate_cycle(WEBCAM_UDP_UL, keys)
        expected = plan.expected_charge(usage.true_sent, usage.true_received)
        assert result.volume == pytest.approx(expected, rel=0.05)

    def test_downlink_cycle_to_verified_poc(self, keys):
        usage, plan, result = self._negotiate_cycle(VRIDGE_DL, keys, seed=22)
        edge_key, operator_key = keys
        params = PlanParams(usage.cycle.t_start, usage.cycle.t_end, plan.c)
        report = PublicVerifier(plan).verify(
            result.poc, params, edge_key.public, operator_key.public
        )
        assert report.ok

    def test_poc_claims_reflect_minimax_flip(self, keys):
        """The rational claims are (≈received, ≈sent) — recoverable by
        any third party from the PoC chain."""
        usage, plan, result = self._negotiate_cycle(WEBCAM_UDP_UL, keys)
        edge_claim, operator_claim = result.poc.claims
        assert edge_claim == pytest.approx(usage.true_received, rel=0.1)
        assert operator_claim == pytest.approx(usage.true_sent, rel=0.1)


class TestHeadlineClaims:
    """The paper's abstract numbers as (band-checked) assertions."""

    @pytest.fixture(scope="class")
    def pooled(self):
        from repro.experiments.figures import _pooled_results

        return {
            "udp": _pooled_results(WEBCAM_UDP_UL, seed=41, n_cycles=2),
            "vr": _pooled_results(VRIDGE_DL, seed=43, n_cycles=2),
        }

    @staticmethod
    def _reduction(results, scheme):
        import statistics

        legacy = statistics.mean(r.mean_delta_mb_per_hr("legacy") for r in results)
        tlc = statistics.mean(r.mean_delta_mb_per_hr(scheme) for r in results)
        return 1.0 - tlc / legacy

    def test_vr_gap_reduction_near_87_percent(self, pooled):
        """Paper: TLC reduces the VR gap by 87.5 %."""
        assert self._reduction(pooled["vr"], "tlc-optimal") > 0.6

    def test_udp_webcam_gap_reduction_strong(self, pooled):
        """Paper: 71.5 % reduction on UDP WebCam."""
        assert self._reduction(pooled["udp"], "tlc-optimal") > 0.5

    def test_optimal_relative_gap_small(self, pooled):
        """Paper: TLC-optimal keeps ε ≤ 2.5 %."""
        import statistics

        for results in pooled.values():
            epsilon = statistics.mean(r.mean_epsilon("tlc-optimal") for r in results)
            assert epsilon <= 0.035
