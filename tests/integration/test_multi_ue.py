"""Multiple UEs on one cell: charging isolation and shared-fate physics."""

import pytest

from repro.cellular import CellularNetwork, RadioProfile, make_test_imsi
from repro.edge import EdgeDevice, EdgeServer
from repro.netsim import Direction, EventLoop, StreamRegistry


def build_cell(n_devices=3, seed=1, base_loss=0.0):
    loop = EventLoop()
    net = CellularNetwork(loop, StreamRegistry(seed))
    endpoints = []
    for i in range(n_devices):
        imsi = make_test_imsi(i + 1)
        flow = f"app-{i}"
        device = EdgeDevice(loop, imsi, flow)
        access = net.attach_device(
            imsi, RadioProfile(base_loss=base_loss), deliver=device.deliver
        )
        device.bind(access)
        net.create_bearer(imsi, flow)
        server = EdgeServer(loop, net, flow)
        endpoints.append((device, server, flow))
    return loop, net, endpoints


class TestChargingIsolation:
    def test_per_flow_counters_do_not_bleed(self):
        """Each bearer is charged exactly its own traffic."""
        loop, net, endpoints = build_cell()
        volumes = [10, 20, 30]
        for (device, server, flow), count in zip(endpoints, volumes):
            for _ in range(count):
                device.send(1000)
        loop.run()
        for (device, server, flow), count in zip(endpoints, volumes):
            assert net.gateway_usage(flow, 0, loop.now(), Direction.UPLINK) == count * 1000

    def test_per_ue_modem_counters_isolated(self):
        loop, net, endpoints = build_cell()
        for i, (device, server, flow) in enumerate(endpoints):
            for _ in range(i + 1):
                server.send(500)
        loop.run()
        for i, (device, server, flow) in enumerate(endpoints):
            assert device.access.modem.dl_received.total == (i + 1) * 500

    def test_one_ue_outage_does_not_charge_others(self):
        """UE 0's radio dies; UEs 1-2 keep clean charging."""
        loop, net, endpoints = build_cell()
        victim = endpoints[0][0]
        victim.access.radio.connected = False
        for device, server, flow in endpoints:
            for _ in range(20):
                server.send(1000)
        loop.run()
        assert endpoints[0][0].access.modem.dl_received.total == 0
        for device, server, flow in endpoints[1:]:
            assert device.access.modem.dl_received.total == 20_000


class TestSharedAir:
    def test_foreground_flows_share_congested_fate(self):
        """All best-effort flows on a saturated cell lose proportionally."""
        loop, net, endpoints = build_cell(seed=5)
        net.set_background_load(1e9, 0.0)
        for device, server, flow in endpoints:
            for i in range(300):
                loop.schedule_at(i * 0.01, server.send, 1000)
        loop.run()
        losses = []
        for device, server, flow in endpoints:
            delivered = device.access.modem.dl_received.total
            losses.append(1 - delivered / 300_000)
        assert all(loss > 0.3 for loss in losses)
        assert max(losses) - min(losses) < 0.25  # proportional, not starved

    def test_distinct_radio_processes_per_ue(self):
        """Seeded independence: UEs see different outage patterns."""
        loop, net, endpoints = build_cell(seed=7)
        radios = [d.access.radio for d, _, _ in endpoints]
        profiles = [RadioProfile.for_disconnectivity(0.2) for _ in radios]
        # Rebuild with outage-enabled radios for this check.
        loop2, net2, _ = build_cell(seed=7)
        imsis = [make_test_imsi(10 + i) for i in range(2)]
        outage_radios = []
        for i, imsi in enumerate(imsis):
            access = net2.attach_device(imsi, profiles[i])
            outage_radios.append(access.radio)
        loop2.run_until(500.0)
        counts = [r.outage_count for r in outage_radios]
        assert all(c > 0 for c in counts)
        # The named RNG streams differ per IMSI: patterns are not identical.
        times = [r.total_outage_time for r in outage_radios]
        assert times[0] != times[1]
