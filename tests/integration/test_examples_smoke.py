"""Keep the fast examples from rotting: run them as scripts.

The heavier simulation examples are exercised implicitly through the
experiment tests; these three are cheap enough to run whole.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name, capsys):
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


@pytest.mark.skipif(not EXAMPLES.exists(), reason="examples directory not present")
class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", capsys)
        assert "negotiated x" in out
        assert "ok=True" in out
        assert "replayed-poc" in out

    def test_dispute_audit(self, capsys):
        out = run_example("dispute_audit.py", capsys)
        assert "Scenario 1" in out and "Scenario 3" in out
        assert "ok=False (poc-signature)" in out

    def test_generic_mobile_charging(self, capsys):
        out = run_example("generic_mobile_charging.py", capsys)
        assert "bound" in out
        assert "over-charge" in out
