"""Adversarial integration: tamper attacks meeting the negotiation bound.

§5.4's threat scenarios run end-to-end: a selfish party tampers its
records, plays the negotiation, and we check what the protocol lets it
get away with — bounded by the honest counterpart's cross-check.
"""

import random

import pytest

from repro.core import (
    DataPlan,
    HonestStrategy,
    NegotiationEngine,
    OptimalStrategy,
    PartyKnowledge,
    PartyRole,
)
from repro.edge.tamper import BillCycleResetTamper, CdrInflationTamper, ScalingTamper
from repro.experiments.runner import ScenarioRunner
from repro.experiments.scenarios import VRIDGE_DL, WEBCAM_UDP_UL


@pytest.fixture(scope="module")
def uplink_cycle():
    runner = ScenarioRunner(WEBCAM_UDP_UL.with_(n_cycles=1, seed=51))
    runner.simulate()
    return runner.collect()[0], runner


@pytest.fixture(scope="module")
def downlink_cycle():
    runner = ScenarioRunner(VRIDGE_DL.with_(n_cycles=1, seed=52))
    runner.simulate()
    return runner.collect()[0], runner


def negotiate(plan, edge_record, edge_est, op_record, op_est, tol=0.05):
    edge = OptimalStrategy(PartyKnowledge(PartyRole.EDGE, edge_record, edge_est), accept_tolerance=tol)
    operator = OptimalStrategy(PartyKnowledge(PartyRole.OPERATOR, op_record, op_est), accept_tolerance=tol)
    return NegotiationEngine(plan, edge, operator).run()


class TestSelfishEdgeTampering:
    def test_netstat_underreport_bounded_by_operator_record(self, uplink_cycle):
        """An edge halving its netstat numbers cannot push the charge
        below (about) what the operator's own record proves."""
        usage, runner = uplink_cycle
        plan = DataPlan(c=0.5)
        # The tampered edge claims from scaled records.
        tampered_sent = int(usage.edge_sent_record * 0.5)
        tampered_est = int(usage.edge_received_estimate * 0.5)
        result = negotiate(
            plan, tampered_sent, tampered_est,
            usage.operator_received_record, usage.operator_sent_estimate,
        )
        floor = usage.operator_received_record * 0.94  # tolerance + slack
        # Either the charge respects the operator's provable floor, or the
        # negotiation never converged (no PoC ⇒ the attack bought nothing).
        assert not result.converged or result.volume >= floor

    def test_bill_cycle_reset_bounded_the_same_way(self, uplink_cycle):
        usage, runner = uplink_cycle
        device_monitor = runner.device.ul_monitor
        reset = BillCycleResetTamper(device_monitor, reset_at=usage.cycle.duration * 0.8)
        tampered_sent = reset.reported_usage(usage.cycle.t_start, usage.cycle.t_end)
        assert tampered_sent < usage.edge_sent_record * 0.5  # attack is large
        result = negotiate(
            DataPlan(c=0.5), tampered_sent, tampered_sent,
            usage.operator_received_record, usage.operator_sent_estimate,
        )
        assert not result.converged or result.volume >= usage.operator_received_record * 0.94

    def test_modem_record_unaffected_by_edge_tampering(self, downlink_cycle):
        """The RRC-based operator record comes from the modem, which the
        user-space tamper cannot reach: the operator's knowledge is intact
        regardless of what the edge does to its own monitors."""
        usage, runner = downlink_cycle
        device_monitor = runner.device.dl_monitor
        ScalingTamper(device_monitor, 0.1)  # edge tampers its own view
        assert usage.operator_received_record == pytest.approx(
            usage.true_received, rel=0.2
        )


class TestSelfishOperatorTampering:
    def test_cdr_inflation_bounded_by_edge_record(self, downlink_cycle):
        """An operator inflating CDRs by 50 % cannot charge beyond (about)
        the edge's sent record — the Theorem 2 ceiling."""
        usage, runner = downlink_cycle
        plan = DataPlan(c=0.5)
        inflated_record = int(usage.operator_received_record * 1.5)
        inflated_est = int(usage.operator_sent_estimate * 1.5)
        result = negotiate(
            plan,
            usage.edge_sent_record, usage.edge_received_estimate,
            inflated_record, inflated_est,
        )
        ceiling = usage.edge_sent_record * 1.06  # tolerance + slack
        assert not result.converged or result.volume <= ceiling

    def test_flat_inflation_against_honest_edge(self, downlink_cycle):
        usage, runner = downlink_cycle
        plan = DataPlan(c=0.5)
        tamper = CdrInflationTamper(
            _RecordView(usage.operator_received_record), extra_bytes=10**9
        )
        inflated = tamper.reported_usage(usage.cycle.t_start, usage.cycle.t_end)
        edge = HonestStrategy(
            PartyKnowledge(PartyRole.EDGE, usage.edge_sent_record, usage.edge_received_estimate),
            accept_tolerance=0.05,
        )
        operator = OptimalStrategy(
            PartyKnowledge(PartyRole.OPERATOR, inflated, inflated), accept_tolerance=0.05
        )
        result = NegotiationEngine(plan, edge, operator, max_rounds=32).run()
        if result.converged:
            assert result.volume <= usage.edge_sent_record * 1.06
        # Non-convergence is also a win: no PoC, no payment.


class _RecordView:
    """Adapter: expose a fixed volume through the UsageView protocol."""

    def __init__(self, volume: int) -> None:
        self.volume = volume

    def reported_usage(self, t1: float, t2: float) -> int:
        return self.volume


class TestLegacyComparison:
    def test_legacy_has_no_defence_against_inflation(self, downlink_cycle):
        """In legacy 4G/5G the operator's (tampered) CDR *is* the bill —
        unbounded over-charging; under TLC the same attack is bounded."""
        usage, _ = downlink_cycle
        inflated = usage.gateway_count + 10**9
        legacy_bill = inflated  # nothing checks it
        assert legacy_bill - usage.gateway_count == 10**9  # passes through
        assert legacy_bill > usage.true_sent * 10
        tlc = negotiate(
            DataPlan(c=0.5),
            usage.edge_sent_record, usage.edge_received_estimate,
            inflated, inflated,
        )
        assert not tlc.converged or tlc.volume < usage.true_sent * 1.1
