"""RRC state machine, modem counters and COUNTER CHECK."""

import pytest

from repro.cellular.rrc import HardwareModem, RrcConnectionManager, RrcState
from repro.netsim.events import EventLoop
from repro.netsim.packet import Direction, Packet


def dl_packet(size=1000):
    return Packet(size=size, flow_id="f", direction=Direction.DOWNLINK)


def ul_packet(size=500):
    return Packet(size=size, flow_id="f", direction=Direction.UPLINK)


class TestHardwareModem:
    def test_counts_both_directions(self):
        modem = HardwareModem(EventLoop())
        modem.count_downlink(dl_packet(1000))
        modem.count_uplink(ul_packet(500))
        response = modem.counter_check()
        assert response.downlink_bytes == 1000
        assert response.uplink_bytes == 500

    def test_counter_check_is_cumulative(self):
        modem = HardwareModem(EventLoop())
        modem.count_downlink(dl_packet(100))
        first = modem.counter_check()
        modem.count_downlink(dl_packet(100))
        second = modem.counter_check()
        assert second.downlink_bytes == first.downlink_bytes + 100

    def test_counter_check_counts_served(self):
        modem = HardwareModem(EventLoop())
        modem.counter_check()
        modem.counter_check()
        assert modem.counter_checks_served == 2


def make_rrc(loop=None, inactivity=10.0, interval=5.0, reports=None):
    loop = loop if loop is not None else EventLoop()
    modem = HardwareModem(loop)
    rrc = RrcConnectionManager(
        loop,
        modem,
        inactivity_timeout_s=inactivity,
        counter_check_interval_s=interval,
        report_sink=reports.append if reports is not None else None,
    )
    return loop, modem, rrc


class TestRrcStateMachine:
    def test_starts_idle(self):
        _, _, rrc = make_rrc()
        assert rrc.state is RrcState.IDLE

    def test_activity_sets_up_connection(self):
        _, _, rrc = make_rrc()
        rrc.on_data_activity()
        assert rrc.state is RrcState.CONNECTED
        assert rrc.setups == 1

    def test_inactivity_releases_with_counter_check(self):
        reports = []
        loop, _, rrc = make_rrc(inactivity=2.0, interval=None, reports=reports)
        rrc.on_data_activity()
        loop.run_until(5.0)
        assert rrc.state is RrcState.IDLE
        assert rrc.releases == 1
        assert len(reports) == 1  # the pre-release COUNTER CHECK

    def test_activity_extends_connection(self):
        loop, _, rrc = make_rrc(inactivity=2.0, interval=None)
        rrc.on_data_activity()
        loop.schedule_at(1.5, rrc.on_data_activity)
        loop.run_until(3.0)
        assert rrc.state is RrcState.CONNECTED

    def test_periodic_counter_checks_while_connected(self):
        reports = []
        loop, _, rrc = make_rrc(inactivity=100.0, interval=2.0, reports=reports)
        rrc.on_data_activity()
        loop.run_until(9.0)
        assert len(reports) == 4  # t = 2, 4, 6, 8

    def test_abort_skips_counter_check(self):
        """Radio link failure: no chance to query the modem."""
        reports = []
        loop, _, rrc = make_rrc(reports=reports)
        rrc.on_data_activity()
        rrc.abort()
        assert rrc.state is RrcState.IDLE
        assert reports == []

    def test_no_periodic_checks_after_release(self):
        reports = []
        loop, _, rrc = make_rrc(inactivity=1.0, interval=2.0, reports=reports)
        rrc.on_data_activity()
        loop.run_until(20.0)
        checks_after_release = len(reports)
        loop.run_until(40.0)
        assert len(reports) == checks_after_release

    def test_release_idempotent(self):
        _, _, rrc = make_rrc()
        rrc.on_data_activity()
        rrc.release()
        rrc.release()
        assert rrc.releases == 1

    def test_rejects_non_positive_timeout(self):
        with pytest.raises(ValueError):
            make_rrc(inactivity=0.0)

    def test_reconnect_after_release(self):
        loop, _, rrc = make_rrc(inactivity=1.0, interval=None)
        rrc.on_data_activity()
        loop.run_until(3.0)
        assert rrc.state is RrcState.IDLE
        rrc.on_data_activity()
        assert rrc.state is RrcState.CONNECTED
        assert rrc.setups == 2
