"""Handover mobility loss and SLA middlebox drops (loss classes 2 & 5)."""

import pytest

from repro.cellular import (
    CellularNetwork,
    HandoverConfig,
    HandoverProcess,
    RadioProfile,
    make_test_imsi,
)
from repro.cellular.middlebox import SlaMiddlebox
from repro.netsim import Direction, EventLoop, Packet, StreamRegistry


def build_network(seed=1):
    loop = EventLoop()
    net = CellularNetwork(loop, StreamRegistry(seed))
    imsi = make_test_imsi(1)
    delivered = []
    access = net.attach_device(imsi, RadioProfile(), deliver=delivered.append)
    net.create_bearer(imsi, "app")
    return loop, net, access, delivered


def dl(size=1000, created_at=0.0):
    return Packet(size=size, flow_id="app", direction=Direction.DOWNLINK,
                  created_at=created_at)


class TestHandover:
    def _with_handovers(self, x2=False, interval=5.0, seed=2):
        loop, net, access, delivered = build_network(seed)
        ue = net.enodeb.ue(str(access.imsi))
        process = HandoverProcess(
            loop, net.rng, ue,
            HandoverConfig(interval_s=interval, interruption_s=0.08,
                           x2_forwarding=x2, interval_jitter=0.0),
        )
        process.start()
        return loop, net, access, delivered, process

    def test_handovers_occur_periodically(self):
        loop, net, access, delivered, process = self._with_handovers()
        loop.run_until(26.0)
        assert process.handovers == 5

    def test_traffic_lost_during_interruption_labelled_mobility(self):
        loop, net, access, delivered, process = self._with_handovers(interval=2.0)
        packets = []
        # Dense downlink (16 Mbps) so each 80 ms interruption accumulates
        # ~160 KB against the 64 KB outage buffer and overflows it.
        for i in range(20000):
            p = dl(1000)
            packets.append(p)
            loop.schedule_at(0.01 + i * 0.0005, net.send_downlink, p)
        loop.run_until(11.0)
        mobility_losses = [p for p in packets if p.dropped_at == "link-mobility"]
        assert mobility_losses, "expected buffer overflow inside handovers"

    def test_charged_but_lost(self):
        """Mobility loss happens after the gateway: a charging gap."""
        loop, net, access, delivered, process = self._with_handovers(interval=2.0)
        for i in range(2000):
            loop.schedule_at(0.01 + i * 0.005, net.send_downlink, dl(1000))
        loop.run_until(11.0)
        gateway = net.gateway_usage("app", 0, 11.0, Direction.DOWNLINK)
        received = access.modem.dl_received.total
        assert gateway > received

    def test_x2_forwarding_recovers_buffered_packets(self):
        loss_without = self._x2_variant(False)
        loss_with = self._x2_variant(True)
        assert loss_with <= loss_without

    def _x2_variant(self, x2):
        loop, net, access, delivered, process = self._with_handovers(x2=x2, interval=2.0, seed=3)
        for i in range(2000):
            loop.schedule_at(0.01 + i * 0.005, net.send_downlink, dl(1000))
        loop.run_until(11.0)
        gateway = net.gateway_usage("app", 0, 11.0, Direction.DOWNLINK)
        return gateway - access.modem.dl_received.total

    def test_drop_label_restored_after_handover(self):
        loop, net, access, delivered, process = self._with_handovers(interval=3.0)
        loop.run_until(10.0)
        ue = net.enodeb.ue(str(access.imsi))
        assert ue.dl_buffer.drop_layer == "phy-intermittent"

    def test_cannot_start_twice(self):
        loop, net, access, delivered, process = self._with_handovers()
        with pytest.raises(RuntimeError):
            process.start()


class TestSlaMiddlebox:
    def test_fresh_packets_pass(self):
        loop = EventLoop()
        forwarded = []
        box = SlaMiddlebox(loop, lambda imsi, p: forwarded.append(p))
        box.set_budget("app", 0.1)
        box.process("001", dl(created_at=0.0))
        assert len(forwarded) == 1

    def test_expired_packets_drop_with_label(self):
        loop = EventLoop()
        forwarded = []
        box = SlaMiddlebox(loop, lambda imsi, p: forwarded.append(p))
        box.set_budget("app", 0.1)
        loop.schedule_at(1.0, lambda: None)
        loop.run()
        stale = dl(created_at=0.0)
        box.process("001", stale)
        assert forwarded == []
        assert stale.dropped_at == "app-sla"
        assert box.dropped.packets == 1

    def test_no_budget_means_passthrough(self):
        loop = EventLoop()
        forwarded = []
        box = SlaMiddlebox(loop, lambda imsi, p: forwarded.append(p))
        loop.schedule_at(100.0, lambda: None)
        loop.run()
        box.process("001", dl(created_at=0.0))
        assert len(forwarded) == 1

    def test_budget_clearable(self):
        loop = EventLoop()
        box = SlaMiddlebox(loop, lambda imsi, p: None)
        box.set_budget("app", 0.1)
        box.set_budget("app", None)
        loop.schedule_at(10.0, lambda: None)
        loop.run()
        packet = dl(created_at=0.0)
        box.process("001", packet)
        assert packet.dropped_at is None

    def test_rejects_bad_budget(self):
        box = SlaMiddlebox(EventLoop(), lambda imsi, p: None)
        with pytest.raises(ValueError):
            box.set_budget("app", 0.0)

    def test_sla_drop_is_charged_loss_in_network(self):
        """End-to-end: the gateway charges, the middlebox drops."""
        loop, net, access, delivered = build_network(seed=4)
        net.set_sla_budget("app", 0.0001)  # tighter than even the LAN hop
        for i in range(50):
            loop.schedule_at(i * 0.01, lambda: net.send_downlink(
                dl(1000, created_at=loop.now())
            ))
        loop.run()
        gateway = net.gateway_usage("app", 0, loop.now(), Direction.DOWNLINK)
        assert gateway == 50_000  # every packet charged...
        assert access.modem.dl_received.total == 0  # ...none delivered
        assert net.middlebox.dropped.packets == 50
