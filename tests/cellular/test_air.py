"""Air interface: rate estimation, priority demand and drop model."""

import pytest

from repro.cellular.air import AirInterface, RateWindow
from repro.netsim.events import EventLoop
from repro.netsim.packet import Direction, Packet
from repro.netsim.rng import StreamRegistry


def packet(size=1400, qci=9):
    return Packet(size=size, flow_id="f", direction=Direction.DOWNLINK, qci=qci)


def make_air(capacity=10e6, usable=1.0, seed=1):
    loop = EventLoop()
    air = AirInterface(
        loop, StreamRegistry(seed), "test", capacity_bps=capacity, usable_fraction=usable
    )
    return loop, air


class TestRateWindow:
    def test_rate_over_window(self):
        window = RateWindow(window_s=1.0)
        window.observe(0.5, 1250)  # 10 kbit
        assert window.rate_bps(0.9) == pytest.approx(10_000)

    def test_samples_expire(self):
        window = RateWindow(window_s=1.0)
        window.observe(0.0, 1250)
        assert window.rate_bps(2.0) == 0.0

    def test_rejects_non_positive_window(self):
        with pytest.raises(ValueError):
            RateWindow(0)


class TestDropModel:
    def test_no_drops_when_uncongested(self):
        loop, air = make_air()
        delivered = []
        for _ in range(50):
            air.submit(packet(), delivered.append)
        loop.run()
        assert len(delivered) == 50
        assert air.dropped.packets == 0

    def test_background_saturation_drops_same_priority(self):
        loop, air = make_air(capacity=10e6)
        air.set_background(9, 20e6)  # 2x capacity at same priority
        assert air.drop_probability(9) > 0.4

    def test_higher_priority_immune_to_lower_background(self):
        """QCI 7 sees no drop from QCI 9 background (Figure 12d)."""
        loop, air = make_air(capacity=10e6)
        air.set_background(9, 50e6)
        assert air.drop_probability(7) == 0.0
        assert air.drop_probability(9) > 0.7

    def test_higher_priority_background_squeezes_lower(self):
        loop, air = make_air(capacity=10e6)
        air.set_background(7, 9e6)
        # QCI 9 sees only the residual 1 Mbps of capacity.
        air.set_background(9, 5e6)
        assert air.drop_probability(9) > 0.5

    def test_clearing_background(self):
        loop, air = make_air(capacity=10e6)
        air.set_background(9, 20e6)
        air.set_background(9, 0)
        assert air.background_total_bps() == 0.0
        assert air.drop_probability(9) == 0.0

    def test_empirical_drop_rate_matches_model(self):
        loop, air = make_air(capacity=10e6, seed=7)
        air.set_background(9, 15e6)  # drop prob ~ 1 - 10/15 = 1/3
        delivered = []
        for i in range(3000):
            loop.schedule_at(i * 0.001, air.submit, packet(125), delivered.append)
        loop.run()
        drop_rate = air.dropped.packets / air.offered.packets
        assert drop_rate == pytest.approx(1 / 3, abs=0.06)

    def test_drops_labelled_ip_congestion(self):
        loop, air = make_air(capacity=1e3, seed=2)
        air.set_background(9, 1e9)
        p = packet()
        air.submit(p, lambda _: None)
        assert p.dropped_at == "ip-congestion"

    def test_usable_fraction_lowers_threshold(self):
        _, strict = make_air(capacity=10e6, usable=0.5)
        strict.set_background(9, 6e6)
        assert strict.drop_probability(9) > 0.0


class TestDelay:
    def test_transit_includes_propagation_and_serialization(self):
        loop, air = make_air(capacity=10e6)
        arrivals = []
        air.submit(packet(1250), lambda p: arrivals.append(loop.now()))
        loop.run()
        # 4 ms propagation + 1 ms serialization of 1250 B at 10 Mbps.
        assert arrivals[0] == pytest.approx(0.005, abs=1e-4)

    def test_queue_delay_grows_with_load(self):
        _, air = make_air(capacity=10e6)
        idle_delay = air.queue_delay()
        air.set_background(9, 9.5e6)
        assert air.queue_delay() > idle_delay

    def test_queue_delay_capped(self):
        _, air = make_air(capacity=10e6)
        air.set_background(9, 100e6)
        assert air.queue_delay() <= air.max_queue_delay_s


class TestValidation:
    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            AirInterface(EventLoop(), StreamRegistry(1), "x", capacity_bps=0)

    def test_rejects_bad_usable_fraction(self):
        with pytest.raises(ValueError):
            AirInterface(EventLoop(), StreamRegistry(1), "x", usable_fraction=1.5)

    def test_rejects_negative_background(self):
        _, air = make_air()
        with pytest.raises(ValueError):
            air.set_background(9, -1.0)

    def test_rejects_unknown_background_qci(self):
        _, air = make_air()
        with pytest.raises(KeyError):
            air.set_background(42, 1e6)
