"""5G naming facade: same functions, TS 23.501 names."""

from repro.cellular import fiveg
from repro.cellular.enodeb import ENodeB
from repro.cellular.gateway import Spgw
from repro.cellular.mme import Mme
from repro.cellular.ofcs import Ofcs
from repro.cellular.pcrf import Pcrf


class TestAliases:
    def test_upf_is_the_gateway(self):
        assert fiveg.Upf is Spgw

    def test_chf_is_the_charging_function(self):
        assert fiveg.Chf is Ofcs

    def test_gnb_is_the_base_station(self):
        assert fiveg.Gnb is ENodeB

    def test_amf_is_mobility_management(self):
        assert fiveg.Amf is Mme

    def test_pcf_is_policy(self):
        assert fiveg.Pcf is Pcrf

    def test_name_map_covers_paper_footnote(self):
        assert fiveg.FUNCTION_NAMES_5G["S-GW/P-GW"] == "UPF"
        assert fiveg.FUNCTION_NAMES_5G["CDF/OFCS"] == "CHF"

    def test_5g_network_builds_with_aliases(self):
        """A '5G' deployment is the same network under new names."""
        from repro.cellular import CellularNetwork, RadioProfile, make_test_imsi
        from repro.netsim import EventLoop, StreamRegistry

        loop = EventLoop()
        net = CellularNetwork(loop, StreamRegistry(1))
        assert isinstance(net.spgw, fiveg.Upf)
        assert isinstance(net.ofcs, fiveg.Chf)
        assert isinstance(net.enodeb, fiveg.Gnb)
