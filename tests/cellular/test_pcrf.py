"""PCRF policy rules: QCI assignment and quota throttling."""

import pytest

from repro.cellular.pcrf import Pcrf, QciRule, QuotaPolicy


class TestQciRules:
    def test_default_without_rules(self):
        assert Pcrf().qci_for("anything") == 9

    def test_glob_match(self):
        pcrf = Pcrf()
        pcrf.add_qci_rule("game:*", 7)
        assert pcrf.qci_for("game:king-of-glory") == 7
        assert pcrf.qci_for("webcam:1") == 9

    def test_first_match_wins(self):
        pcrf = Pcrf()
        pcrf.add_qci_rule("game:vip:*", 3)
        pcrf.add_qci_rule("game:*", 7)
        assert pcrf.qci_for("game:vip:player1") == 3
        assert pcrf.qci_for("game:player2") == 7

    def test_rule_validates_qci(self):
        with pytest.raises(KeyError):
            QciRule("x", 42)


class TestQuota:
    def test_no_quota_means_unlimited(self):
        pcrf = Pcrf()
        assert pcrf.allowed_rate_bps("flow", 10**12) is None

    def test_under_quota_unthrottled(self):
        """The AT&T-style plan: full speed until the quota."""
        pcrf = Pcrf()
        pcrf.set_quota("flow", QuotaPolicy(quota_bytes=15_000_000_000))
        assert pcrf.allowed_rate_bps("flow", 14_000_000_000) is None

    def test_over_quota_throttled_to_128kbps(self):
        pcrf = Pcrf()
        pcrf.set_quota("flow", QuotaPolicy(quota_bytes=15_000_000_000))
        assert pcrf.allowed_rate_bps("flow", 15_000_000_001) == 128_000.0

    def test_custom_throttle_speed(self):
        pcrf = Pcrf()
        pcrf.set_quota("flow", QuotaPolicy(quota_bytes=100, throttle_bps=64_000.0))
        assert pcrf.allowed_rate_bps("flow", 200) == 64_000.0

    def test_exactly_at_quota_unthrottled(self):
        pcrf = Pcrf()
        pcrf.set_quota("flow", QuotaPolicy(quota_bytes=100))
        assert pcrf.allowed_rate_bps("flow", 100) is None

    def test_quota_validation(self):
        with pytest.raises(ValueError):
            QuotaPolicy(quota_bytes=0)
        with pytest.raises(ValueError):
            QuotaPolicy(quota_bytes=100, throttle_bps=0)
