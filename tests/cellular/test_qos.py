"""QCI table semantics."""

import pytest

from repro.cellular.qos import (
    DEFAULT_QCI,
    GAMING_GBR_QCI,
    GAMING_QCI,
    QCI_TABLE,
    ResourceType,
    qos_class,
    scheduler_priority,
)


class TestTable:
    def test_all_nine_standard_classes(self):
        assert sorted(QCI_TABLE) == list(range(1, 10))

    def test_gaming_qci3_delay_budget(self):
        """The paper: QCI 3 guarantees 50 ms packet delay for gaming."""
        assert qos_class(GAMING_GBR_QCI).packet_delay_budget_ms == 50
        assert qos_class(GAMING_GBR_QCI).resource_type is ResourceType.GBR

    def test_gaming_qci7_delay_budget(self):
        """The paper: QCI 7 guarantees 100 ms for interactive gaming."""
        assert qos_class(GAMING_QCI).packet_delay_budget_ms == 100

    def test_default_is_best_effort_9(self):
        assert DEFAULT_QCI == 9
        assert qos_class(9).priority == 9

    def test_unknown_qci_raises_with_context(self):
        with pytest.raises(KeyError, match="QCI 42"):
            qos_class(42)


class TestPriority:
    def test_qci7_outranks_qci9(self):
        """This ordering is what protects gaming in Figure 12d."""
        assert scheduler_priority(GAMING_QCI) < scheduler_priority(DEFAULT_QCI)

    def test_qci3_outranks_qci7(self):
        assert scheduler_priority(3) < scheduler_priority(7)

    def test_outranks_helper(self):
        assert qos_class(3).outranks(qos_class(9))
        assert not qos_class(9).outranks(qos_class(3))

    def test_ims_signalling_is_top_priority(self):
        assert qos_class(5).priority == 1
