"""Radio channel: outage process, RSS model, loss curve."""

import pytest

from repro.cellular.radio import GOOD_RSS_DBM, OUTAGE_FLOOR_DBM, RadioChannel, RadioProfile
from repro.netsim.events import EventLoop
from repro.netsim.rng import StreamRegistry


def make_radio(profile=None, seed=1, record=False):
    loop = EventLoop()
    radio = RadioChannel(
        loop, StreamRegistry(seed), profile or RadioProfile(), record_rss=record
    )
    return loop, radio


class TestProfile:
    def test_disconnectivity_ratio_formula(self):
        profile = RadioProfile(outages_enabled=True, mean_outage_s=2.0, mean_uptime_s=18.0)
        assert profile.disconnectivity_ratio == pytest.approx(0.1)

    def test_no_outages_means_zero_eta(self):
        assert RadioProfile().disconnectivity_ratio == 0.0

    def test_for_disconnectivity_inverts_ratio(self):
        profile = RadioProfile.for_disconnectivity(0.15)
        assert profile.disconnectivity_ratio == pytest.approx(0.15)
        assert profile.mean_outage_s == pytest.approx(1.93)

    @pytest.mark.parametrize("eta", [0.0, 1.0, -0.5])
    def test_for_disconnectivity_rejects_bad_eta(self, eta):
        with pytest.raises(ValueError):
            RadioProfile.for_disconnectivity(eta)


class TestOutages:
    def test_starts_connected(self):
        _, radio = make_radio()
        assert radio.connected

    def test_no_outages_when_disabled(self):
        loop, radio = make_radio()
        radio.start()
        loop.run_until(600)
        assert radio.outage_count == 0
        assert radio.connected

    def test_measured_eta_approximates_configured(self):
        profile = RadioProfile.for_disconnectivity(0.10)
        loop, radio = make_radio(profile, seed=3)
        radio.start()
        loop.run_until(4000)
        assert radio.measured_disconnectivity() == pytest.approx(0.10, abs=0.05)

    def test_outage_callbacks_fire_in_pairs(self):
        profile = RadioProfile.for_disconnectivity(0.2, mean_outage_s=1.0)
        loop, radio = make_radio(profile, seed=5)
        events = []
        radio.on_outage_start.append(lambda: events.append("down"))
        radio.on_outage_end.append(lambda: events.append("up"))
        radio.start()
        loop.run_until(100)
        assert events, "expected at least one outage in 100 s at eta=0.2"
        for i in range(0, len(events) - 1, 2):
            assert events[i] == "down" and events[i + 1] == "up"

    def test_cannot_start_twice(self):
        _, radio = make_radio()
        radio.start()
        with pytest.raises(RuntimeError):
            radio.start()


class TestRss:
    def test_rss_floor_during_outage(self):
        _, radio = make_radio()
        radio.connected = False
        assert radio.current_rss() == OUTAGE_FLOOR_DBM

    def test_rss_history_recorded_per_second(self):
        profile = RadioProfile(rss_sample_interval_s=1.0)
        loop, radio = make_radio(profile, record=True)
        radio.start()
        loop.run_until(10)
        assert len(radio.rss_history) == 11  # t=0..10 inclusive

    def test_rss_stays_in_bounds(self):
        profile = RadioProfile(rss_noise_std=10.0)
        loop, radio = make_radio(profile, record=True)
        radio.start()
        loop.run_until(200)
        for sample in radio.rss_history:
            assert profile.rss_floor_dbm <= sample.rss_dbm <= profile.rss_ceiling_dbm


class TestLoss:
    def test_no_loss_in_good_signal_without_floor(self):
        _, radio = make_radio(RadioProfile(base_rss_dbm=-80.0, base_loss=0.0))
        assert radio.loss_probability() == 0.0

    def test_base_loss_floor_applies_in_good_signal(self):
        _, radio = make_radio(RadioProfile(base_rss_dbm=-80.0, base_loss=0.02))
        assert radio.loss_probability() == pytest.approx(0.02)

    def test_loss_rises_below_good_threshold(self):
        profile = RadioProfile(base_rss_dbm=-110.0, rss_noise_std=0.0, base_loss=0.0)
        _, radio = make_radio(profile)
        radio._current_rss = -110.0
        assert radio.loss_probability() > 0.0

    def test_loss_monotone_in_weak_signal(self):
        profile = RadioProfile(rss_noise_std=0.0, base_loss=0.0)
        _, radio = make_radio(profile)
        radio._current_rss = -100.0
        weak = radio.loss_probability()
        radio._current_rss = -120.0
        weaker = radio.loss_probability()
        assert weaker > weak

    def test_survives_air_statistics(self):
        """Empirical air-loss rate tracks base_loss in good signal."""
        profile = RadioProfile(base_rss_dbm=-80.0, rss_noise_std=0.0, base_loss=0.1)
        _, radio = make_radio(profile, seed=9)
        outcomes = [radio.survives_air() for _ in range(4000)]
        loss_rate = 1 - sum(outcomes) / len(outcomes)
        assert loss_rate == pytest.approx(0.1, abs=0.02)

    def test_good_threshold_constant_matches_paper(self):
        assert GOOD_RSS_DBM == -95.0
