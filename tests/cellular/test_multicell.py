"""Two-cell topology: X2 handover with real source/target eNodeBs."""

import pytest

from repro.cellular import CellularNetwork, NetworkConfig, RadioProfile, make_test_imsi
from repro.netsim import Direction, EventLoop, Packet, StreamRegistry


def build(seed=1, n_cells=2):
    loop = EventLoop()
    net = CellularNetwork(loop, StreamRegistry(seed), NetworkConfig(n_cells=n_cells))
    imsi = make_test_imsi(1)
    delivered = []
    access = net.attach_device(imsi, RadioProfile(), deliver=delivered.append, cell=0)
    net.create_bearer(imsi, "app")
    up = []
    net.register_uplink_sink("app", up.append)
    return loop, net, access, delivered, up


def ul(size=1000):
    return Packet(size=size, flow_id="app", direction=Direction.UPLINK)


def dl(size=1000):
    return Packet(size=size, flow_id="app", direction=Direction.DOWNLINK)


class TestTopology:
    def test_cells_have_independent_air(self):
        loop, net, access, *_ = build()
        net.set_background_load(1e9, 1e9, cell=0)
        assert net.enodebs[0].downlink_air.background_total_bps() > 0
        assert net.enodebs[1].downlink_air.background_total_bps() == 0

    def test_initially_served_by_cell_0(self):
        loop, net, access, *_ = build()
        assert net.serving_enodeb(access.imsi) is net.enodebs[0]

    def test_unknown_imsi_has_no_serving_cell(self):
        loop, net, *_ = build()
        with pytest.raises(KeyError):
            net.serving_enodeb("000000000000099")

    def test_single_cell_back_compat(self):
        loop, net, access, *_ = build(n_cells=1)
        assert net.enodeb is net.enodebs[0]


class TestHandover:
    def test_traffic_flows_via_target_after_handover(self):
        loop, net, access, delivered, up = build()
        net.handover(access.imsi, 1, interruption_s=0.02)
        loop.run_until(1.0)
        access.send_uplink(ul())
        net.send_downlink(dl())
        loop.run_until(2.0)
        assert len(up) == 1 and len(delivered) == 1
        assert net.serving_enodeb(access.imsi) is net.enodebs[1]
        assert net.handovers == 1

    def test_modem_counters_continuous_across_cells(self):
        """The modem travels with the UE: the operator's RRC record sees
        one continuous counter across the move (§5.4 keeps working)."""
        loop, net, access, delivered, _ = build()
        net.send_downlink(dl(700))
        loop.run_until(0.5)
        net.handover(access.imsi, 1, interruption_s=0.02)
        loop.run_until(1.0)
        net.send_downlink(dl(300))
        loop.run_until(2.0)
        assert access.modem.dl_received.total == 1000

    def test_source_runs_counter_check_before_leaving(self):
        loop, net, access, *_ = build()
        ue = net.enodebs[0].ue(str(access.imsi))
        checks_before = ue.rrc.counter_checks_sent
        net.handover(access.imsi, 1)
        assert ue.rrc.counter_checks_sent == checks_before + 1

    def test_interruption_buffers_at_target(self):
        """In-flight packets during the break buffer at the target and
        deliver on completion — nothing is lost on a clean handover."""
        loop, net, access, delivered, _ = build()
        net.handover(access.imsi, 1, interruption_s=0.1)
        net.send_downlink(dl())  # arrives mid-interruption
        loop.run_until(0.05)
        assert delivered == []
        loop.run_until(1.0)
        assert len(delivered) == 1

    def test_no_x2_discards_source_buffer(self):
        loop, net, access, delivered, _ = build()
        access.radio.connected = False  # force buffering at the source
        packets = [dl() for _ in range(5)]
        for p in packets:
            net.send_downlink(p)
        loop.run_until(0.5)
        net.handover(access.imsi, 1, x2_forwarding=False)
        assert all(p.dropped_at == "link-mobility" for p in packets)

    def test_x2_forwards_source_buffer(self):
        loop, net, access, delivered, _ = build()
        access.radio.connected = False
        packets = [dl() for _ in range(5)]
        for p in packets:
            net.send_downlink(p)
        loop.run_until(0.5)
        net.handover(access.imsi, 1, x2_forwarding=True)
        access.radio.connected = True
        for callback in access.radio.on_outage_end:
            callback()
        loop.run_until(2.0)
        assert len(delivered) == 5

    def test_escaping_a_congested_cell(self):
        """The mobility upside: hand over out of a saturated cell and the
        loss stops — with the charging staying continuous at the SPGW."""
        loop, net, access, delivered, _ = build(seed=3)
        net.set_background_load(1e9, 0.0, cell=0)
        for i in range(200):
            loop.schedule_at(0.01 + i * 0.01, net.send_downlink, dl())
        loop.schedule_at(1.0, net.handover, access.imsi, 1)
        loop.run_until(10.0)
        charged = net.gateway_usage("app", 0, 10.0, Direction.DOWNLINK)
        assert charged == 200_000  # gateway charged everything
        received = access.modem.dl_received.total
        lost = charged - received
        # Losses concentrate in the first second (cell 0, saturated).
        assert 0 < lost < 110_000

    def test_handover_to_same_cell_rejected(self):
        loop, net, access, *_ = build()
        with pytest.raises(ValueError):
            net.handover(access.imsi, 0)

    def test_handover_to_missing_cell_rejected(self):
        loop, net, access, *_ = build()
        with pytest.raises(ValueError):
            net.handover(access.imsi, 7)

    def test_repeated_ping_pong_handovers(self):
        loop, net, access, delivered, _ = build()
        for k in range(6):
            loop.schedule_at(0.5 + k * 0.5, net.handover, access.imsi, (k + 1) % 2)
        for i in range(40):
            loop.schedule_at(0.05 + i * 0.1, net.send_downlink, dl(100))
        loop.run_until(10.0)
        assert net.handovers == 6
        # Clean radio + buffering: everything eventually delivered.
        assert access.modem.dl_received.total == 4000
