"""End-to-end cellular network assembly: the charging-gap physics."""

import pytest

from repro.cellular import CellularNetwork, NetworkConfig, RadioProfile, make_test_imsi
from repro.cellular.enodeb import ENodeBConfig
from repro.netsim import Direction, EventLoop, Packet, StreamRegistry


def build(radio=None, config=None, seed=1, qci=9):
    loop = EventLoop()
    net = CellularNetwork(loop, StreamRegistry(seed), config)
    imsi = make_test_imsi(1)
    delivered = []
    access = net.attach_device(imsi, radio or RadioProfile(), deliver=delivered.append)
    net.create_bearer(imsi, "app", qci=qci)
    uplinked = []
    net.register_uplink_sink("app", uplinked.append)
    return loop, net, access, delivered, uplinked


def ul(size=1000):
    return Packet(size=size, flow_id="app", direction=Direction.UPLINK)


def dl(size=1000):
    return Packet(size=size, flow_id="app", direction=Direction.DOWNLINK)


class TestCleanPath:
    def test_uplink_end_to_end(self):
        loop, net, access, _, uplinked = build()
        for _ in range(10):
            access.send_uplink(ul())
        loop.run()
        assert len(uplinked) == 10
        assert net.gateway_usage("app", 0, loop.now(), Direction.UPLINK) == 10_000

    def test_downlink_end_to_end(self):
        loop, net, access, delivered, _ = build()
        for _ in range(10):
            net.send_downlink(dl())
        loop.run()
        assert len(delivered) == 10
        assert access.modem.dl_received.total == 10_000

    def test_no_gap_without_loss(self):
        """Lossless path ⇒ gateway count equals both endpoints' counts."""
        loop, net, access, delivered, uplinked = build()
        for _ in range(20):
            access.send_uplink(ul(500))
            net.send_downlink(dl(700))
        loop.run()
        t = loop.now()
        assert net.gateway_usage("app", 0, t, Direction.UPLINK) == 10_000
        assert net.gateway_usage("app", 0, t, Direction.DOWNLINK) == 14_000
        assert access.modem.dl_received.total == 14_000


class TestChargingGapPhysics:
    def test_uplink_air_loss_undercounts_at_gateway(self):
        """UL loss happens *before* the gateway: x̂_o < x̂_e."""
        loop, net, access, _, uplinked = build(RadioProfile(base_loss=0.5), seed=3)
        for _ in range(200):
            access.send_uplink(ul())
        loop.run()
        gateway = net.gateway_usage("app", 0, loop.now(), Direction.UPLINK)
        assert gateway < 200_000
        assert access.modem.ul_sent.total == 200_000  # modem counted all

    def test_downlink_air_loss_overcounts_at_gateway(self):
        """DL loss happens *after* the gateway: charged but not received."""
        loop, net, access, delivered, _ = build(RadioProfile(base_loss=0.5), seed=3)
        for _ in range(200):
            net.send_downlink(dl())
        loop.run()
        gateway = net.gateway_usage("app", 0, loop.now(), Direction.DOWNLINK)
        assert gateway == 200_000
        assert access.modem.dl_received.total < gateway

    def test_congestion_creates_downlink_gap(self):
        loop, net, access, delivered, _ = build()
        net.set_background_load(1e9, 0.0)  # saturate DL air
        for i in range(200):
            loop.schedule_at(i * 0.005, net.send_downlink, dl())
        loop.run()
        gateway = net.gateway_usage("app", 0, loop.now(), Direction.DOWNLINK)
        assert gateway == 200_000
        assert access.modem.dl_received.total < gateway

    def test_gaming_qci_protected_from_background(self):
        loop, net, access, delivered, _ = build(qci=7)
        net.set_background_load(1e9, 1e9)  # QCI-9 background only
        for i in range(100):
            loop.schedule_at(i * 0.01, net.send_downlink, dl())
        loop.run()
        assert len(delivered) == 100  # strict priority shields QCI 7


class TestOutageAndDetach:
    def test_outage_uplink_counted_by_modem_but_lost(self):
        loop, net, access, _, uplinked = build()
        access.radio.connected = False
        for _ in range(100):
            access.send_uplink(ul())
        loop.run()
        assert access.modem.ul_sent.total == 100_000
        assert len(uplinked) * 1000 < 100_000

    def test_detached_uplink_not_counted(self):
        loop, net, access, *_ = build()
        access.ue.attached = False
        p = ul()
        access.send_uplink(p)
        assert p.dropped_at == "detached"
        assert access.modem.ul_sent.total == 0

    def test_rlf_stops_downlink_charging(self):
        """Figure 4's observation: detach prevents the gap from growing."""
        config = NetworkConfig(enodeb=ENodeBConfig(rlf_timeout_s=5.0))
        loop, net, access, delivered, _ = build(config=config)
        radio = access.radio
        # Manually drive an 8-second outage starting at t=1.
        loop.schedule_at(1.0, setattr, radio, "connected", False)
        for cb in radio.on_outage_start:
            loop.schedule_at(1.0, cb)
        # Steady downlink traffic throughout.
        for i in range(120):
            loop.schedule_at(i * 0.1, net.send_downlink, dl())
        loop.run_until(12.0)
        gateway = net.gateway_usage("app", 0, 12.0, Direction.DOWNLINK)
        total_offered = 120_000
        # Traffic after the RLF detach (t≈6) was dropped *uncharged*.
        assert gateway < total_offered
        assert net.spgw.detached_drops.packets > 0


class TestAccessHelpers:
    def test_access_lookup(self):
        loop, net, access, *_ = build()
        assert net.access(make_test_imsi(1)) is access
        with pytest.raises(KeyError):
            net.access("000000000000099")

    def test_send_uplink_validates_direction(self):
        loop, net, access, *_ = build()
        with pytest.raises(ValueError):
            access.send_uplink(dl())

    def test_drop_summary_keys(self):
        loop, net, *_ = build()
        summary = net.drop_summary()
        assert "air-dl-congestion" in summary
        assert "gateway-detached" in summary
