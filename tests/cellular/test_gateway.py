"""SPGW charging semantics: counting positions, detach, policing."""

import pytest

from repro.cellular.bearer import Bearer, BearerTable
from repro.cellular.gateway import Spgw, TokenBucket
from repro.cellular.identifiers import make_test_imsi
from repro.netsim.events import EventLoop
from repro.netsim.packet import Direction, Packet


class FakePolicy:
    def __init__(self, rate=None):
        self.rate = rate

    def allowed_rate_bps(self, flow_id, used_bytes):
        return self.rate


def build(policy=None):
    loop = EventLoop()
    bearers = BearerTable()
    bearer = Bearer(imsi=make_test_imsi(1), flow_id="app")
    bearers.add(bearer)
    spgw = Spgw(loop, bearers, policy=policy)
    forwarded = []
    spgw.connect_enodeb(lambda imsi, p: forwarded.append((imsi, p)))
    received = []
    spgw.register_uplink_sink("app", received.append)
    return loop, spgw, bearer, forwarded, received


def ul(size=1000, flow="app"):
    return Packet(size=size, flow_id=flow, direction=Direction.UPLINK)


def dl(size=1000, flow="app"):
    return Packet(size=size, flow_id=flow, direction=Direction.DOWNLINK)


class TestUplink:
    def test_counts_then_forwards(self):
        loop, spgw, bearer, _, received = build()
        spgw.receive_uplink(ul(700))
        assert bearer.uplink.total == 700
        assert len(received) == 1

    def test_wrong_direction_rejected(self):
        loop, spgw, *_ = build()
        with pytest.raises(ValueError):
            spgw.receive_uplink(dl())

    def test_unknown_flow_dropped_uncharged(self):
        loop, spgw, bearer, _, received = build()
        p = ul(flow="ghost")
        spgw.receive_uplink(p)
        assert p.dropped_at == "no-bearer"
        assert spgw.no_bearer_drops.packets == 1
        assert received == []


class TestDownlink:
    def test_charges_before_forwarding(self):
        """The root of the DL charging gap: count at the gateway, lose later."""
        loop, spgw, bearer, forwarded, _ = build()
        spgw.send_downlink(dl(900))
        assert bearer.downlink.total == 900
        assert forwarded[0][0] == str(bearer.imsi)

    def test_detached_ue_not_charged(self):
        """Post-RLF traffic must be dropped *before* counting (§3.2)."""
        loop, spgw, bearer, forwarded, _ = build()
        bearer.deactivate()
        p = dl()
        spgw.send_downlink(p)
        assert bearer.downlink.total == 0
        assert p.dropped_at == "detached"
        assert forwarded == []

    def test_reactivated_ue_charged_again(self):
        loop, spgw, bearer, forwarded, _ = build()
        bearer.deactivate()
        spgw.send_downlink(dl())
        bearer.reactivate()
        spgw.send_downlink(dl(500))
        assert bearer.downlink.total == 500

    def test_requires_enodeb_connection(self):
        loop = EventLoop()
        bearers = BearerTable()
        bearers.add(Bearer(imsi=make_test_imsi(1), flow_id="app"))
        spgw = Spgw(loop, bearers)
        with pytest.raises(RuntimeError):
            spgw.send_downlink(dl())


class TestPolicing:
    def test_unthrottled_flow_passes(self):
        loop, spgw, bearer, _, received = build(policy=FakePolicy(rate=None))
        spgw.receive_uplink(ul())
        assert len(received) == 1

    def test_throttled_flow_policed_after_burst(self):
        # 8 kbps => 1000-byte burst bucket; the second packet exceeds it.
        loop, spgw, bearer, _, received = build(policy=FakePolicy(rate=8000.0))
        spgw.receive_uplink(ul(1000))
        p = ul(1000)
        spgw.receive_uplink(p)
        assert p.dropped_at == "policed"
        assert spgw.policed_drops.packets == 1
        assert bearer.uplink.total == 1000  # policed traffic is not charged

    def test_tokens_refill_over_time(self):
        loop, spgw, bearer, _, received = build(policy=FakePolicy(rate=8000.0))
        spgw.receive_uplink(ul(1000))
        loop.schedule_at(1.0, spgw.receive_uplink, ul(1000))
        loop.run()
        assert len(received) == 2


class TestTokenBucket:
    def test_burst_then_block(self):
        loop = EventLoop()
        bucket = TokenBucket(loop, rate_bps=8000.0)  # 1000-byte burst
        assert bucket.admit(600)
        assert bucket.admit(400)
        assert not bucket.admit(1)

    def test_refill_proportional_to_time(self):
        loop = EventLoop()
        bucket = TokenBucket(loop, rate_bps=8000.0)
        bucket.admit(1000)
        loop.schedule_at(0.5, lambda: None)
        loop.run()
        assert bucket.admit(500)  # 0.5 s * 1000 B/s refilled
        assert not bucket.admit(500)

    def test_rejects_non_positive_rate(self):
        with pytest.raises(ValueError):
            TokenBucket(EventLoop(), 0)
