"""OFCS: Trace-1 CDR format and cycle accounting."""

import pytest

from repro.cellular.bearer import Bearer, BearerTable
from repro.cellular.identifiers import ChargingIdAllocator, GatewayAddress, make_test_imsi
from repro.cellular.ofcs import CdrRecord, Ofcs
from repro.netsim.events import EventLoop
from repro.netsim.packet import Direction


def build():
    loop = EventLoop()
    bearers = BearerTable()
    bearer = Bearer(imsi=make_test_imsi(1), flow_id="cam", charging_id=0)
    bearers.add(bearer)
    ofcs = Ofcs(loop, bearers, GatewayAddress("192.168.2.11"), ChargingIdAllocator())
    return loop, bearers, bearer, ofcs


class TestUsageQueries:
    def test_usage_by_direction_and_window(self):
        loop, _, bearer, ofcs = build()
        bearer.count_uplink(10.0, 100)
        bearer.count_downlink(20.0, 200)
        bearer.count_uplink(30.0, 50)
        assert ofcs.usage_bytes("cam", 0, 15, Direction.UPLINK) == 100
        assert ofcs.usage_bytes("cam", 0, 40, Direction.UPLINK) == 150
        assert ofcs.usage_bytes("cam", 0, 40, Direction.DOWNLINK) == 200

    def test_unknown_flow_raises(self):
        _, _, _, ofcs = build()
        with pytest.raises(KeyError):
            ofcs.usage_bytes("ghost", 0, 1, Direction.UPLINK)


class TestCdrGeneration:
    def test_cdr_carries_trace1_fields(self):
        loop, _, bearer, ofcs = build()
        bearer.count_uplink(100.0, 274841)
        bearer.count_downlink(200.0, 33604032)
        loop.run_until(3600.0)
        record = ofcs.close_cycle("cam")
        assert record.datavolume_uplink == 274841
        assert record.datavolume_downlink == 33604032
        assert record.gateway_address == "192.168.2.11"
        assert record.sequence_number == 1001
        assert record.charging_id == 0

    def test_consecutive_cycles_partition_usage(self):
        loop, _, bearer, ofcs = build()
        bearer.count_uplink(10.0, 100)
        loop.run_until(60.0)
        first = ofcs.close_cycle("cam")
        bearer.count_uplink(70.0, 200)
        loop.run_until(120.0)
        second = ofcs.close_cycle("cam")
        assert first.datavolume_uplink == 100
        assert second.datavolume_uplink == 200
        assert second.sequence_number == first.sequence_number + 1

    def test_idle_cycle_zero_volume(self):
        loop, _, _, ofcs = build()
        loop.run_until(60.0)
        record = ofcs.close_cycle("cam")
        assert record.datavolume_uplink == 0
        assert record.datavolume_downlink == 0

    def test_records_accumulate(self):
        loop, _, _, ofcs = build()
        loop.run_until(10.0)
        ofcs.close_cycle("cam")
        loop.run_until(20.0)
        ofcs.close_cycle("cam")
        assert len(ofcs.records) == 2


class TestXmlFormat:
    def _record(self):
        return CdrRecord(
            served_imsi_tbcd="00 01 11 32 54 76 48 F5",
            gateway_address="192.168.2.11",
            charging_id=0,
            sequence_number=1001,
            time_of_first_usage="2019-01-07 07:13:46",
            time_of_last_usage="2019-01-07 08:13:46",
            time_usage_s=3600,
            datavolume_uplink=274841,
            datavolume_downlink=33604032,
            flow_id="cam",
        )

    def test_xml_matches_trace1_structure(self):
        """Field-for-field against the paper's Trace 1."""
        xml = self._record().to_xml()
        for tag, value in [
            ("servedIMSI", "00 01 11 32 54 76 48 F5"),
            ("gatewayAddress", "192.168.2.11"),
            ("chargingID", "0"),
            ("SequenceNumber", "1001"),
            ("timeOfFirstUsage", "2019-01-07 07:13:46"),
            ("timeOfLastUsage", "2019-01-07 08:13:46"),
            ("timeUsage", "3600"),
            ("datavolumeUplink", "274841"),
            ("datavolumeDownlink", "33604032"),
        ]:
            assert f"<{tag}>{value}</{tag}>" in xml

    def test_xml_roundtrip(self):
        record = self._record()
        parsed = CdrRecord.from_xml(record.to_xml(), flow_id="cam")
        assert parsed == record

    def test_from_xml_rejects_wrong_root(self):
        with pytest.raises(ValueError):
            CdrRecord.from_xml("<notARecord/>")

    def test_from_xml_rejects_missing_field(self):
        with pytest.raises(ValueError, match="servedIMSI"):
            CdrRecord.from_xml("<chargingRecord></chargingRecord>")
