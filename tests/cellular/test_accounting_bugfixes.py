"""Regression tests for multi-cell accounting and handover bugs.

Each test here fails on the pre-fix code:

* ``drop_summary`` read only cell 0's air interfaces;
* X2 handover re-pushed the drained buffer *before* raising the cap and
  a second handover mid-interruption saved the inflated capacity;
* ``handover()`` flipped ``radio.connected`` directly, bypassing the
  radio's outage bookkeeping (and spuriously reconnecting radios it
  never disconnected);
* ``attach_device`` validated the cell index and duplicate IMSIs only
  after mutating HSS/MME state.
"""

import pytest

from repro.cellular import (
    CellularNetwork,
    HandoverConfig,
    HandoverProcess,
    NetworkConfig,
    RadioProfile,
    make_test_imsi,
)
from repro.netsim import Direction, EventLoop, Packet, StreamRegistry


def build(seed=1, n_cells=2):
    loop = EventLoop()
    net = CellularNetwork(loop, StreamRegistry(seed), NetworkConfig(n_cells=n_cells))
    imsi = make_test_imsi(1)
    delivered = []
    access = net.attach_device(imsi, RadioProfile(), deliver=delivered.append, cell=0)
    net.create_bearer(imsi, "app")
    return loop, net, access, delivered


def dl(size=1000):
    return Packet(size=size, flow_id="app", direction=Direction.DOWNLINK)


class TestMultiCellDropSummary:
    def test_aggregates_across_cells(self):
        loop, net, access, _ = build(n_cells=2)
        imsi2 = make_test_imsi(2)
        net.attach_device(imsi2, RadioProfile(), cell=1)
        net.create_bearer(imsi2, "app2")
        # Saturate both cells' downlink air so congestion drops appear in
        # each; the summary must count both, not just cell 0's.
        net.set_background_load(1e12, 0.0)
        for i in range(200):
            loop.schedule_at(0.01 + i * 0.01, net.send_downlink, dl())
            loop.schedule_at(
                0.01 + i * 0.01,
                net.send_downlink,
                Packet(size=1000, flow_id="app2", direction=Direction.DOWNLINK),
            )
        loop.run_until(5.0)
        per_cell = [enb.downlink_air.dropped.packets for enb in net.enodebs]
        assert all(p > 0 for p in per_cell), "both cells should be dropping"
        summary = net.drop_summary()
        assert summary["air-dl-congestion"].packets == sum(per_cell)
        assert summary["air-ul-congestion"].packets == sum(
            enb.uplink_air.dropped.packets for enb in net.enodebs
        )


class TestHandoverOutageAccounting:
    def test_interruption_recorded_as_outage(self):
        loop, net, access, _ = build()
        loop.run_until(0.5)
        net.handover(access.imsi, 1, interruption_s=0.05)
        # Mid-interruption the radio reports the ongoing break.
        elapsed = []
        loop.schedule_at(0.52, lambda: elapsed.append(access.radio.outage_elapsed()))
        loop.run_until(1.0)
        assert access.radio.outage_count == 1
        assert access.radio.total_outage_time == pytest.approx(0.05)
        assert elapsed[0] == pytest.approx(0.02)
        assert access.radio.measured_disconnectivity() > 0
        assert access.radio.connected

    def test_mobility_process_uses_radio_bookkeeping(self):
        loop, net, access, _ = build()
        ue = net.enodeb.ue(str(access.imsi))
        process = HandoverProcess(
            loop, net.rng, ue,
            HandoverConfig(interval_s=2.0, interruption_s=0.08, interval_jitter=0.0),
        )
        process.start()
        loop.run_until(11.0)
        assert process.handovers > 0
        assert access.radio.outage_count == process.handovers
        assert access.radio.total_outage_time == pytest.approx(
            0.08 * process.handovers
        )

    def test_handover_does_not_reconnect_a_down_radio(self):
        """Completion must not flip a radio the handover never forced down."""
        loop, net, access, _ = build()
        access.radio.connected = False  # down for unrelated reasons
        net.handover(access.imsi, 1, interruption_s=0.05)
        loop.run_until(1.0)
        assert not access.radio.connected
        assert access.radio.outage_count == 0


class TestBackToBackHandovers:
    def test_second_handover_mid_interruption_does_not_compound_capacity(self):
        loop, net, access, delivered = build(n_cells=3)
        ue = net.enodebs[0].ue(str(access.imsi))
        base_capacity = ue.dl_buffer.capacity_bytes
        net.handover(access.imsi, 1, interruption_s=0.1, x2_forwarding=True)
        loop.run_until(0.05)
        net.handover(access.imsi, 2, interruption_s=0.1, x2_forwarding=True)
        # A probe sent mid-break must buffer until the *second* handover
        # completes at t=0.15 — the first (superseded) completion at
        # t=0.1 must not reconnect the radio early.
        loop.run_until(0.12)
        net.send_downlink(dl())
        loop.run_until(0.13)
        assert delivered == []
        loop.run_until(1.0)
        assert len(delivered) == 1
        assert ue.dl_buffer.capacity_bytes == base_capacity
        assert ue.dl_buffer.drop_layer == "phy-intermittent"
        assert access.radio.connected
        assert access.radio.outage_count == 1  # one continuous forced break
        assert access.radio.total_outage_time == pytest.approx(0.15)

    def test_x2_preserves_backlog_exceeding_base_capacity(self):
        """Capacity must rise before the re-push, or a backlog inherited
        from an earlier inflated break tail-drops out of the X2 pipe."""
        loop, net, access, delivered = build(n_cells=3)
        access.radio.connected = False  # buffer everything at the cell
        ue = net.enodebs[0].ue(str(access.imsi))
        base_capacity = ue.dl_buffer.capacity_bytes
        net.handover(access.imsi, 1, interruption_s=0.1, x2_forwarding=True)
        # During the inflated break, queue ~2x the base capacity.
        packets = [dl() for _ in range(2 * base_capacity // 1000)]
        for packet in packets:
            net.send_downlink(packet)
        loop.run_until(0.5)  # first handover completes; radio still down
        assert all(p.dropped_at is None for p in packets)
        net.handover(access.imsi, 2, interruption_s=0.1, x2_forwarding=True)
        assert all(p.dropped_at is None for p in packets)
        access.radio.connected = True
        for callback in access.radio.on_outage_end:
            callback()
        loop.run_until(2.0)
        assert len(delivered) == len(packets)


class TestAttachValidation:
    def test_out_of_range_cell_rejected_cleanly(self):
        loop, net, *_ = build(n_cells=2)
        imsi = make_test_imsi(9)
        with pytest.raises(ValueError, match="no such cell"):
            net.attach_device(imsi, RadioProfile(), cell=5)
        # No half-provisioned subscriber left behind: a valid attach works.
        assert not net.hss.is_provisioned(str(imsi))
        access = net.attach_device(imsi, RadioProfile(), cell=1)
        assert access.attached

    def test_duplicate_imsi_rejected_without_clobbering_hss(self):
        loop, net, access, _ = build()
        with pytest.raises(ValueError, match="already attached"):
            net.attach_device(access.imsi, RadioProfile(), device_name="impostor")
        assert net.hss.lookup(str(access.imsi)).device_name == "device"
