"""MME attach/detach and HSS provisioning."""

import pytest

from repro.cellular.bearer import Bearer, BearerTable
from repro.cellular.hss import Hss, SubscriberProfile
from repro.cellular.identifiers import make_test_imsi
from repro.cellular.mme import Mme


def build():
    hss = Hss()
    bearers = BearerTable()
    imsi = make_test_imsi(1)
    hss.provision(SubscriberProfile(imsi, device_name="EL20"))
    bearer = Bearer(imsi=imsi, flow_id="app")
    bearers.add(bearer)
    mme = Mme(hss, bearers)
    return hss, bearers, bearer, mme, imsi


class TestHss:
    def test_lookup_provisioned(self):
        hss, _, _, _, imsi = build()
        assert hss.lookup(str(imsi)).device_name == "EL20"

    def test_lookup_unknown_raises(self):
        with pytest.raises(KeyError):
            Hss().lookup("999999999999999")

    def test_is_provisioned(self):
        hss, _, _, _, imsi = build()
        assert hss.is_provisioned(str(imsi))
        assert not hss.is_provisioned("000000000000000")

    def test_reprovision_replaces(self):
        hss, _, _, _, imsi = build()
        hss.provision(SubscriberProfile(imsi, device_name="Pixel"))
        assert hss.lookup(str(imsi)).device_name == "Pixel"
        assert len(hss) == 1


class TestMme:
    def test_initial_attach_requires_provisioning(self):
        hss, bearers = Hss(), BearerTable()
        mme = Mme(hss, bearers)
        with pytest.raises(KeyError):
            mme.initial_attach(make_test_imsi(5))

    def test_double_initial_attach_rejected(self):
        _, _, _, mme, imsi = build()
        mme.initial_attach(imsi)
        with pytest.raises(ValueError):
            mme.initial_attach(imsi)

    def test_detach_deactivates_bearers(self):
        _, _, bearer, mme, imsi = build()
        mme.initial_attach(imsi)
        mme.detach(str(imsi), cause="radio-link-failure")
        assert not mme.is_attached(str(imsi))
        assert not bearer.active

    def test_reattach_reactivates_bearers(self):
        _, _, bearer, mme, imsi = build()
        mme.initial_attach(imsi)
        mme.detach(str(imsi))
        mme.attach(str(imsi))
        assert bearer.active
        assert mme.is_attached(str(imsi))

    def test_detach_cause_recorded(self):
        _, _, _, mme, imsi = build()
        mme.initial_attach(imsi)
        mme.detach(str(imsi), cause="radio-link-failure")
        assert mme.record(str(imsi)).detach_causes == ["radio-link-failure"]

    def test_detach_idempotent(self):
        _, _, _, mme, imsi = build()
        mme.initial_attach(imsi)
        mme.detach(str(imsi))
        mme.detach(str(imsi))
        assert mme.record(str(imsi)).detaches == 1

    def test_unknown_imsi_not_attached(self):
        _, _, _, mme, _ = build()
        assert not mme.is_attached("123")

    def test_record_of_unknown_raises(self):
        _, _, _, mme, _ = build()
        with pytest.raises(KeyError):
            mme.record("123")
