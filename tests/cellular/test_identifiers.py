"""IMSI encoding, gateway addresses and ID allocation."""

import pytest

from repro.cellular.identifiers import (
    ChargingIdAllocator,
    GatewayAddress,
    Imsi,
    make_test_imsi,
)


class TestImsi:
    def test_valid_15_digit(self):
        imsi = Imsi("001011234567890")
        assert imsi.mcc == "001"
        assert imsi.mnc == "01"

    def test_rejects_non_digits(self):
        with pytest.raises(ValueError):
            Imsi("00101123456789X")

    def test_rejects_too_long(self):
        with pytest.raises(ValueError):
            Imsi("0" * 16)

    def test_tbcd_swaps_nibbles(self):
        """The paper's Trace 1 shows IMSI 000111234567845F-style TBCD."""
        imsi = Imsi("001011234567845")
        encoded = imsi.tbcd_hex()
        assert encoded.split()[0] == "00"  # '00' -> swapped '00'
        assert encoded.endswith("F5")  # odd length padded with F

    def test_tbcd_even_length_no_padding(self):
        assert "F" not in Imsi("001234").tbcd_hex()

    def test_make_test_imsi_deterministic(self):
        assert make_test_imsi(7) == make_test_imsi(7)
        assert make_test_imsi(7) != make_test_imsi(8)

    def test_make_test_imsi_is_15_digits(self):
        assert len(make_test_imsi(0).digits) == 15

    def test_make_test_imsi_rejects_negative(self):
        with pytest.raises(ValueError):
            make_test_imsi(-1)


class TestGatewayAddress:
    def test_valid_ipv4(self):
        assert str(GatewayAddress("192.168.2.11")) == "192.168.2.11"

    @pytest.mark.parametrize("bad", ["256.0.0.1", "1.2.3", "a.b.c.d", "1.2.3.4.5"])
    def test_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            GatewayAddress(bad)


class TestAllocator:
    def test_charging_ids_start_at_zero(self):
        alloc = ChargingIdAllocator()
        assert alloc.next_charging_id() == 0
        assert alloc.next_charging_id() == 1

    def test_sequence_numbers_start_at_1001(self):
        """Matches the paper's Trace 1 (SequenceNumber 1001)."""
        assert ChargingIdAllocator().next_sequence() == 1001
