"""eNodeB: outage buffering, RLF detach, re-attach, air paths."""

import pytest

from repro.cellular.enodeb import ENodeB, ENodeBConfig
from repro.cellular.radio import RadioChannel, RadioProfile
from repro.cellular.rrc import HardwareModem
from repro.netsim.events import EventLoop
from repro.netsim.packet import Direction, Packet
from repro.netsim.rng import StreamRegistry


class FakeMme:
    def __init__(self):
        self.detached = []
        self.attached = []

    def detach(self, imsi, cause):
        self.detached.append((imsi, cause))

    def attach(self, imsi):
        self.attached.append(imsi)


def build(config=None, seed=1, base_loss=0.0):
    loop = EventLoop()
    rng = StreamRegistry(seed)
    mme = FakeMme()
    enb = ENodeB(loop, rng, config or ENodeBConfig(), mme=mme)
    radio = RadioChannel(loop, rng, RadioProfile(base_loss=base_loss), name="ue1")
    modem = HardwareModem(loop)
    delivered = []
    ue = enb.register_ue("001", radio, modem, delivered.append)
    core = []
    enb.connect_core(core.append)
    radio.start()
    return loop, enb, ue, radio, modem, delivered, core, mme


def dl(size=1000, qci=9):
    return Packet(size=size, flow_id="f", direction=Direction.DOWNLINK, qci=qci)


def ul(size=1000):
    return Packet(size=size, flow_id="f", direction=Direction.UPLINK)


class TestDownlink:
    def test_delivers_and_counts_at_modem(self):
        loop, enb, ue, radio, modem, delivered, _, _ = build()
        enb.receive_downlink("001", dl(1200))
        loop.run()
        assert len(delivered) == 1
        assert modem.dl_received.total == 1200

    def test_delivery_stamps_time(self):
        loop, enb, ue, radio, modem, delivered, _, _ = build()
        enb.receive_downlink("001", dl())
        loop.run()
        assert delivered[0].delivered_at is not None

    def test_air_loss_drops_packet(self):
        loop, enb, ue, radio, modem, delivered, _, _ = build(base_loss=1.0)
        p = dl()
        enb.receive_downlink("001", p)
        loop.run()
        assert delivered == []
        assert p.dropped_at == "phy-rss"
        assert modem.dl_received.total == 0

    def test_unknown_ue_raises(self):
        loop, enb, *_ = build()
        with pytest.raises(KeyError):
            enb.receive_downlink("999", dl())

    def test_data_activity_drives_rrc(self):
        loop, enb, ue, *_ = build()
        enb.receive_downlink("001", dl())
        assert ue.rrc.state.value == "RRC_CONNECTED"


class TestOutageBuffering:
    def test_packets_buffer_during_outage(self):
        loop, enb, ue, radio, modem, delivered, _, _ = build()
        radio.connected = False
        enb.receive_downlink("001", dl())
        loop.run()
        assert delivered == []
        assert len(ue.dl_buffer) == 1

    def test_buffer_drains_on_reconnect(self):
        config = ENodeBConfig(rlf_timeout_s=100.0)
        loop, enb, ue, radio, modem, delivered, _, _ = build(config)
        radio.connected = False
        enb.receive_downlink("001", dl(500))
        loop.run()
        radio.connected = True
        for callback in radio.on_outage_end:
            callback()
        loop.run()
        assert len(delivered) == 1
        assert ue.buffered_recovered.packets == 1

    def test_buffer_overflow_is_phy_loss(self):
        config = ENodeBConfig(outage_buffer_bytes=1500)
        loop, enb, ue, radio, *_ = build(config)
        radio.connected = False
        packets = [dl(1000) for _ in range(3)]
        for p in packets:
            enb.receive_downlink("001", p)
        loop.run()
        dropped = [p for p in packets if p.dropped_at == "phy-intermittent"]
        assert len(dropped) >= 1


class TestRadioLinkFailure:
    def _run_outage(self, duration, config=None):
        config = config or ENodeBConfig(rlf_timeout_s=5.0, attach_delay_s=0.5)
        loop, enb, ue, radio, modem, delivered, core, mme = build(config)
        for callback in radio.on_outage_start:
            loop.schedule_at(1.0, callback)
        radio.connected = True
        loop.schedule_at(1.0, setattr, radio, "connected", False)
        loop.schedule_at(1.0 + duration, setattr, radio, "connected", True)
        for callback in radio.on_outage_end:
            loop.schedule_at(1.0 + duration, callback)
        return loop, enb, ue, radio, mme, delivered

    def test_short_outage_no_detach(self):
        loop, enb, ue, radio, mme, _ = self._run_outage(3.0)
        loop.run_until(20.0)
        assert ue.attached
        assert mme.detached == []
        assert ue.rlf_count == 0

    def test_long_outage_triggers_rlf_detach(self):
        """Outages past the 5 s timer detach the UE (§3.2 of the paper)."""
        loop, enb, ue, radio, mme, _ = self._run_outage(8.0)
        loop.run_until(6.5)
        assert not ue.attached
        assert mme.detached == [("001", "radio-link-failure")]
        assert ue.rlf_count == 1

    def test_reattach_after_recovery(self):
        loop, enb, ue, radio, mme, _ = self._run_outage(8.0)
        loop.run_until(20.0)
        assert ue.attached
        assert mme.attached == ["001"]

    def test_rlf_drops_buffered_packets(self):
        loop, enb, ue, radio, mme, delivered = self._run_outage(8.0)
        p = dl()
        loop.schedule_at(2.0, enb.receive_downlink, "001", p)
        loop.run_until(7.0)
        assert p.dropped_at == "phy-intermittent"
        assert delivered == []

    def test_traffic_while_detached_is_dropped(self):
        loop, enb, ue, radio, mme, delivered = self._run_outage(8.0)
        loop.run_until(6.5)  # detached now, still in outage
        p = dl()
        enb.receive_downlink("001", p)
        loop.run_until(7.0)
        assert p.dropped_at == "detached"


class TestUplink:
    def test_forwards_to_core(self):
        loop, enb, ue, radio, modem, delivered, core, _ = build()
        enb.receive_uplink(ue, ul(800))
        loop.run()
        assert len(core) == 1

    def test_uplink_needs_backhaul(self):
        loop = EventLoop()
        rng = StreamRegistry(1)
        enb = ENodeB(loop, rng)
        radio = RadioChannel(loop, rng, RadioProfile(), name="x")
        modem = HardwareModem(loop)
        ue = enb.register_ue("002", radio, modem, lambda p: None)
        radio.start()
        enb.receive_uplink(ue, ul())
        with pytest.raises(RuntimeError):
            loop.run()

    def test_duplicate_registration_rejected(self):
        loop, enb, ue, radio, modem, *_ = build()
        with pytest.raises(ValueError):
            enb.register_ue("001", radio, modem, lambda p: None)
