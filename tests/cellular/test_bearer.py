"""EPS bearer counting and lookup."""

import pytest

from repro.cellular.bearer import Bearer, BearerTable
from repro.cellular.identifiers import make_test_imsi


def bearer(flow="app", index=1, qci=9):
    return Bearer(imsi=make_test_imsi(index), flow_id=flow, qci=qci)


class TestBearer:
    def test_counts_per_direction(self):
        b = bearer()
        b.count_uplink(1.0, 100)
        b.count_downlink(2.0, 200)
        assert b.uplink.total == 100
        assert b.downlink.total == 200

    def test_tracks_first_and_last_usage(self):
        b = bearer()
        b.count_uplink(1.5, 10)
        b.count_downlink(9.0, 10)
        assert b.first_usage == 1.5
        assert b.last_usage == 9.0

    def test_validates_qci_eagerly(self):
        with pytest.raises(KeyError):
            bearer(qci=42)

    def test_deactivate_reactivate(self):
        b = bearer()
        b.deactivate()
        assert not b.active
        b.reactivate()
        assert b.active

    def test_bearer_ids_start_at_5_and_increment(self):
        """3GPP EPS bearer identities start at 5."""
        a, b = bearer("f1"), bearer("f2")
        assert a.bearer_id >= 5
        assert b.bearer_id == a.bearer_id + 1


class TestBearerTable:
    def test_lookup_by_flow(self):
        table = BearerTable()
        b = bearer("cam")
        table.add(b)
        assert table.by_flow("cam") is b
        assert table.by_flow("other") is None

    def test_lookup_by_imsi_collects_all(self):
        table = BearerTable()
        imsi = make_test_imsi(3)
        b1 = Bearer(imsi=imsi, flow_id="a")
        b2 = Bearer(imsi=imsi, flow_id="b")
        table.add(b1)
        table.add(b2)
        assert set(x.flow_id for x in table.by_imsi(imsi)) == {"a", "b"}

    def test_duplicate_flow_rejected(self):
        table = BearerTable()
        table.add(bearer("dup"))
        with pytest.raises(ValueError):
            table.add(bearer("dup", index=2))

    def test_len_counts_bearers(self):
        table = BearerTable()
        table.add(bearer("x"))
        table.add(bearer("y", index=2))
        assert len(table) == 2
